//! SQL tokenizer.

use crate::error::EngineError;

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are recognized case-insensitively by
    /// the parser; the original spelling is preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (with `''` escapes resolved).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

/// A token plus its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset in the source.
    pub offset: usize,
}

/// Tokenize SQL text.
pub fn lex(src: &str) -> Result<Vec<Spanned>, EngineError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Spanned {
                    token: Token::LParen,
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    token: Token::RParen,
                    offset: i,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    token: Token::Comma,
                    offset: i,
                });
                i += 1;
            }
            '.' => {
                out.push(Spanned {
                    token: Token::Dot,
                    offset: i,
                });
                i += 1;
            }
            '=' => {
                out.push(Spanned {
                    token: Token::Eq,
                    offset: i,
                });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Spanned {
                        token: Token::Ne,
                        offset: i,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        token: Token::Le,
                        offset: i,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Lt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        token: Token::Ge,
                        offset: i,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Gt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        token: Token::Ne,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(EngineError::Lex {
                        offset: i,
                        message: "unexpected '!'".into(),
                    });
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(EngineError::Lex {
                                offset: start,
                                message: "unterminated string literal".into(),
                            });
                        }
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            // Collect one UTF-8 code point.
                            let ch_len = utf8_len(b);
                            s.push_str(&src[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                out.push(Spanned {
                    token: Token::Str(s),
                    offset: start,
                });
            }
            '0'..='9' | '-' => {
                let start = i;
                if c == '-' {
                    i += 1;
                    if !matches!(bytes.get(i), Some(b'0'..=b'9')) {
                        return Err(EngineError::Lex {
                            offset: start,
                            message: "expected digit after '-'".into(),
                        });
                    }
                }
                while matches!(bytes.get(i), Some(b'0'..=b'9')) {
                    i += 1;
                }
                let mut is_float = false;
                if bytes.get(i) == Some(&b'.') && matches!(bytes.get(i + 1), Some(b'0'..=b'9')) {
                    is_float = true;
                    i += 1;
                    while matches!(bytes.get(i), Some(b'0'..=b'9')) {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let token = if is_float {
                    Token::Float(text.parse().map_err(|e| EngineError::Lex {
                        offset: start,
                        message: format!("bad float {text}: {e}"),
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|e| EngineError::Lex {
                        offset: start,
                        message: format!("bad integer {text}: {e}"),
                    })?)
                };
                out.push(Spanned {
                    token,
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    token: Token::Ident(src[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                return Err(EngineError::Lex {
                    offset: i,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    out.push(Spanned {
        token: Token::Eof,
        offset: src.len(),
    });
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn keywords_and_symbols() {
        assert_eq!(
            toks("SELECT a.b, 1 FROM t"),
            vec![
                Token::Ident("SELECT".into()),
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("b".into()),
                Token::Comma,
                Token::Int(1),
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("a = b <> c <= d >= e < f > g != h"),
            vec![
                Token::Ident("a".into()),
                Token::Eq,
                Token::Ident("b".into()),
                Token::Ne,
                Token::Ident("c".into()),
                Token::Le,
                Token::Ident("d".into()),
                Token::Ge,
                Token::Ident("e".into()),
                Token::Lt,
                Token::Ident("f".into()),
                Token::Gt,
                Token::Ident("g".into()),
                Token::Ne,
                Token::Ident("h".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks("'it''s'"), vec![Token::Str("it's".into()), Token::Eof]);
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 -7 3.5 -0.25"),
            vec![
                Token::Int(42),
                Token::Int(-7),
                Token::Float(3.5),
                Token::Float(-0.25),
                Token::Eof
            ]
        );
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(toks("'café'"), vec![Token::Str("café".into()), Token::Eof]);
    }

    #[test]
    fn errors_carry_offsets() {
        match lex("SELECT @") {
            Err(EngineError::Lex { offset, .. }) => assert_eq!(offset, 7),
            other => panic!("expected lex error, got {other:?}"),
        }
    }
}
