//! Recursive-descent parser for the SQL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query        := branch ( UNION ALL branch )* [ ORDER BY ident (, ident)* ]
//! branch       := select_core | '(' query ')'       -- nested unions flatten
//! select_core  := SELECT [DISTINCT] item (, item)*
//!                 FROM from_item (, from_item)*
//!                 join_clause*
//!                 [ WHERE cond (AND cond)* ]
//! item         := expr [ [AS] ident ]
//! from_item    := ident [ [AS] ident ] | '(' query ')' AS ident
//! join_clause  := [INNER] JOIN from_item ON cond (AND cond)*
//!               | LEFT [OUTER] JOIN from_item ON cond (AND cond)*
//! cond         := expr cmp expr
//! expr         := ident [ '.' ident ] | int | float | string
//!               | CAST '(' NULL AS type ')'
//! type         := INT | FLOAT | VARCHAR
//! ```

use sr_data::DataType;

use crate::error::EngineError;
use crate::expr::CmpOp;
use crate::plan::JoinKind;
use crate::sql::ast::{FromItem, JoinClause, Query, SelectItem, SelectStmt, SqlCond, SqlExpr};
use crate::sql::lexer::{lex, Spanned, Token};

/// Parse SQL text into a [`Query`].
pub fn parse(src: &str) -> Result<Query, EngineError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    // Statement-level WITH clause.
    let mut ctes = Vec::new();
    if p.eat_kw("WITH") {
        loop {
            let name = p.ident()?;
            p.expect_kw("AS")?;
            p.expect(Token::LParen)?;
            let def = p.query()?;
            p.expect(Token::RParen)?;
            ctes.push((name, def));
            if *p.peek() == Token::Comma {
                p.bump();
            } else {
                break;
            }
        }
    }
    let mut q = p.query()?;
    p.expect_eof()?;
    q.ctes = ctes;
    Ok(q)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> EngineError {
        EngineError::Parse {
            offset: self.offset(),
            message: message.into(),
        }
    }

    /// Is the current token the given keyword (case-insensitive)?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), EngineError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn expect(&mut self, t: Token) -> Result<(), EngineError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<(), EngineError> {
        if *self.peek() == Token::Eof {
            Ok(())
        } else {
            Err(self.err(format!("trailing input: {:?}", self.peek())))
        }
    }

    /// Any identifier that is not a reserved structural keyword.
    fn ident(&mut self) -> Result<String, EngineError> {
        const RESERVED: &[&str] = &[
            "SELECT", "FROM", "WHERE", "JOIN", "LEFT", "OUTER", "INNER", "ON", "UNION", "ALL",
            "ORDER", "BY", "AS", "AND", "DISTINCT", "CAST", "NULL", "WITH",
        ];
        match self.peek() {
            Token::Ident(s) if !RESERVED.iter().any(|r| s.eq_ignore_ascii_case(r)) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn query(&mut self) -> Result<Query, EngineError> {
        let mut branches = self.branch()?;
        while self.at_kw("UNION") {
            self.bump();
            self.expect_kw("ALL")?;
            branches.extend(self.branch()?);
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            order_by.push(self.ident()?);
            while *self.peek() == Token::Comma {
                self.bump();
                order_by.push(self.ident()?);
            }
        }
        Ok(Query {
            ctes: Vec::new(),
            branches,
            order_by,
        })
    }

    /// One union branch; parenthesized sub-queries flatten their branches
    /// (UNION ALL is associative) but must not carry their own ORDER BY.
    fn branch(&mut self) -> Result<Vec<SelectStmt>, EngineError> {
        if *self.peek() == Token::LParen {
            self.bump();
            let q = self.query()?;
            if !q.order_by.is_empty() {
                return Err(self.err("ORDER BY not allowed in a union branch"));
            }
            self.expect(Token::RParen)?;
            Ok(q.branches)
        } else {
            Ok(vec![self.select_core()?])
        }
    }

    fn select_core(&mut self) -> Result<SelectStmt, EngineError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = vec![self.select_item()?];
        while *self.peek() == Token::Comma {
            self.bump();
            items.push(self.select_item()?);
        }
        self.expect_kw("FROM")?;
        let mut from = vec![self.from_item()?];
        while *self.peek() == Token::Comma {
            self.bump();
            from.push(self.from_item()?);
        }
        let mut joins = Vec::new();
        loop {
            let kind = if self.at_kw("LEFT") {
                self.bump();
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::LeftOuter
            } else if self.at_kw("INNER") {
                self.bump();
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.at_kw("JOIN") {
                self.bump();
                JoinKind::Inner
            } else {
                break;
            };
            let item = self.from_item()?;
            self.expect_kw("ON")?;
            let mut on = vec![self.cond()?];
            while self.eat_kw("AND") {
                on.push(self.cond()?);
            }
            joins.push(JoinClause { kind, item, on });
        }
        let mut where_ = Vec::new();
        if self.eat_kw("WHERE") {
            where_.push(self.cond()?);
            while self.eat_kw("AND") {
                where_.push(self.cond()?);
            }
        }
        Ok(SelectStmt {
            distinct,
            items,
            from,
            joins,
            where_,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, EngineError> {
        let expr = self.expr()?;
        let has_alias = self.eat_kw("AS")
            || (matches!(self.peek(), Token::Ident(_)) && !self.at_structural_keyword());
        let alias = if has_alias { Some(self.ident()?) } else { None };
        Ok(SelectItem { expr, alias })
    }

    fn at_structural_keyword(&self) -> bool {
        [
            "FROM", "WHERE", "JOIN", "LEFT", "INNER", "ON", "UNION", "ORDER", "AND",
        ]
        .iter()
        .any(|k| self.at_kw(k))
    }

    #[allow(clippy::wrong_self_convention)] // parses a FROM item; not a conversion
    fn from_item(&mut self) -> Result<FromItem, EngineError> {
        if *self.peek() == Token::LParen {
            self.bump();
            let q = self.query()?;
            self.expect(Token::RParen)?;
            self.expect_kw("AS")?;
            let alias = self.ident()?;
            Ok(FromItem::Subquery {
                query: Box::new(q),
                alias,
            })
        } else {
            let name = self.ident()?;
            let has_alias = self.eat_kw("AS")
                || (matches!(self.peek(), Token::Ident(_)) && !self.at_structural_keyword());
            let alias = if has_alias {
                self.ident()?
            } else {
                name.clone()
            };
            Ok(FromItem::Table { name, alias })
        }
    }

    fn cond(&mut self) -> Result<SqlCond, EngineError> {
        let left = self.expr()?;
        let op = match self.bump() {
            Token::Eq => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            other => return Err(self.err(format!("expected comparison, found {other:?}"))),
        };
        let right = self.expr()?;
        Ok(SqlCond { left, op, right })
    }

    fn expr(&mut self) -> Result<SqlExpr, EngineError> {
        match self.peek().clone() {
            Token::Int(i) => {
                self.bump();
                Ok(SqlExpr::IntLit(i))
            }
            Token::Float(x) => {
                self.bump();
                Ok(SqlExpr::FloatLit(x))
            }
            Token::Str(s) => {
                self.bump();
                Ok(SqlExpr::StrLit(s))
            }
            Token::Ident(s) if s.eq_ignore_ascii_case("CAST") => {
                self.bump();
                self.expect(Token::LParen)?;
                self.expect_kw("NULL")?;
                self.expect_kw("AS")?;
                let t = self.data_type()?;
                self.expect(Token::RParen)?;
                Ok(SqlExpr::Null(t))
            }
            Token::Ident(_) => {
                let first = self.ident()?;
                if *self.peek() == Token::Dot {
                    self.bump();
                    let name = self.ident()?;
                    Ok(SqlExpr::ColRef {
                        qualifier: Some(first),
                        name,
                    })
                } else {
                    Ok(SqlExpr::ColRef {
                        qualifier: None,
                        name: first,
                    })
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    fn data_type(&mut self) -> Result<DataType, EngineError> {
        for (kw, t) in [
            ("INT", DataType::Int),
            ("INTEGER", DataType::Int),
            ("FLOAT", DataType::Float),
            ("DOUBLE", DataType::Float),
            ("VARCHAR", DataType::Str),
            ("TEXT", DataType::Str),
        ] {
            if self.eat_kw(kw) {
                return Ok(t);
            }
        }
        Err(self.err(format!("expected data type, found {:?}", self.peek())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let q = parse("SELECT s.suppkey AS k FROM Supplier s WHERE s.suppkey > 2").unwrap();
        assert_eq!(q.branches.len(), 1);
        let s = &q.branches[0];
        assert_eq!(s.items.len(), 1);
        assert_eq!(s.items[0].alias.as_deref(), Some("k"));
        assert_eq!(s.where_.len(), 1);
    }

    #[test]
    fn parse_comma_joins_and_where() {
        let q = parse(
            "SELECT s.suppkey, p.name FROM Supplier s, PartSupp ps, Part p \
             WHERE s.suppkey = ps.suppkey AND ps.partkey = p.partkey",
        )
        .unwrap();
        let s = &q.branches[0];
        assert_eq!(s.from.len(), 3);
        assert_eq!(s.where_.len(), 2);
        assert!(s.items[0].alias.is_none());
    }

    #[test]
    fn parse_left_outer_join_with_subquery() {
        let q = parse(
            "SELECT s.suppkey AS a, q.pname AS b FROM Supplier s \
             LEFT OUTER JOIN (SELECT ps.suppkey AS sk, p.name AS pname \
             FROM PartSupp ps, Part p WHERE ps.partkey = p.partkey) AS q \
             ON s.suppkey = q.sk ORDER BY a",
        )
        .unwrap();
        let s = &q.branches[0];
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].kind, JoinKind::LeftOuter);
        assert!(matches!(s.joins[0].item, FromItem::Subquery { .. }));
        assert_eq!(q.order_by, vec!["a"]);
    }

    #[test]
    fn parse_union_all_flattens() {
        let q = parse(
            "(SELECT 1 AS L FROM Region) UNION ALL (SELECT 2 AS L FROM Region) \
             UNION ALL (SELECT 3 AS L FROM Region) ORDER BY L",
        )
        .unwrap();
        assert_eq!(q.branches.len(), 3);
        assert_eq!(q.order_by, vec!["L"]);
    }

    #[test]
    fn parse_cast_null() {
        let q = parse("SELECT CAST(NULL AS VARCHAR) AS x FROM Region").unwrap();
        assert_eq!(q.branches[0].items[0].expr, SqlExpr::Null(DataType::Str));
    }

    #[test]
    fn parse_distinct() {
        let q = parse("SELECT DISTINCT r.name FROM Region r").unwrap();
        assert!(q.branches[0].distinct);
    }

    #[test]
    fn implicit_alias_without_as() {
        let q = parse("SELECT r.name nm FROM Region r").unwrap();
        assert_eq!(q.branches[0].items[0].alias.as_deref(), Some("nm"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a FROM").is_err());
        assert!(parse("SELECT a FROM t WHERE a ~ b").is_err());
        assert!(parse("SELECT a FROM t extra garbage ON").is_err());
        assert!(
            parse("SELECT a FROM (SELECT b FROM t ORDER BY b) UNION ALL SELECT c FROM u").is_err()
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        let q = parse("select r.name from Region r order by name").unwrap();
        assert_eq!(q.order_by, vec!["name"]);
    }

    #[test]
    fn inner_join_keyword() {
        let q = parse("SELECT a.x FROM A a INNER JOIN B b ON a.x = b.x").unwrap();
        assert_eq!(q.branches[0].joins[0].kind, JoinKind::Inner);
        let q2 = parse("SELECT a.x FROM A a JOIN B b ON a.x = b.x").unwrap();
        assert_eq!(q2.branches[0].joins[0].kind, JoinKind::Inner);
    }
}
