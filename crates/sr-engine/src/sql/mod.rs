//! SQL subset: AST, lexer, parser, binder (SQL → plan) and lowering
//! (plan → SQL).

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::{FromItem, JoinClause, Query, SelectItem, SelectStmt, SqlCond, SqlExpr};
pub use binder::{bind, plan_sql};
pub use lower::to_sql;
pub use parser::parse;
