//! SQL abstract syntax and printing.
//!
//! The dialect is the fragment the paper's generated queries need (§3.4):
//! `SELECT`-`FROM`-`WHERE` blocks with comma inner joins, explicit
//! `LEFT OUTER JOIN … ON`, derived tables, `UNION ALL` (interpreted as the
//! paper's *outer union*: branches are aligned by column name), `ORDER BY`,
//! `DISTINCT`, and `CAST(NULL AS t)` for typed padding columns.

use std::fmt;

use sr_data::DataType;

use crate::expr::CmpOp;
use crate::plan::JoinKind;

/// A SQL scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// `qualifier.name` or bare `name`.
    ColRef {
        /// Optional table/derived-table qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// String literal.
    StrLit(String),
    /// `CAST(NULL AS t)`.
    Null(DataType),
}

impl SqlExpr {
    /// Qualified column reference.
    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> SqlExpr {
        SqlExpr::ColRef {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    /// Bare column reference.
    pub fn col(name: impl Into<String>) -> SqlExpr {
        SqlExpr::ColRef {
            qualifier: None,
            name: name.into(),
        }
    }
}

impl fmt::Display for SqlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlExpr::ColRef {
                qualifier: Some(q),
                name,
            } => write!(f, "{q}.{name}"),
            SqlExpr::ColRef {
                qualifier: None,
                name,
            } => write!(f, "{name}"),
            SqlExpr::IntLit(i) => write!(f, "{i}"),
            SqlExpr::FloatLit(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            SqlExpr::StrLit(s) => write!(f, "'{}'", s.replace('\'', "''")),
            SqlExpr::Null(t) => write!(f, "CAST(NULL AS {t})"),
        }
    }
}

/// A comparison `left op right`.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlCond {
    /// Left operand.
    pub left: SqlExpr,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub right: SqlExpr,
}

impl fmt::Display for SqlCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// One `SELECT` output item.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression.
    pub expr: SqlExpr,
    /// Optional `AS alias`.
    pub alias: Option<String>,
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} AS {a}", self.expr),
            None => write!(f, "{}", self.expr),
        }
    }
}

/// A `FROM` item.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// Base table with alias.
    Table {
        /// Table name.
        name: String,
        /// Alias.
        alias: String,
    },
    /// Derived table `(query) AS alias`.
    Subquery {
        /// The subquery.
        query: Box<Query>,
        /// Alias.
        alias: String,
    },
}

impl FromItem {
    /// The item's alias.
    pub fn alias(&self) -> &str {
        match self {
            FromItem::Table { alias, .. } => alias,
            FromItem::Subquery { alias, .. } => alias,
        }
    }
}

impl fmt::Display for FromItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromItem::Table { name, alias } => {
                if name == alias {
                    write!(f, "{name}")
                } else {
                    write!(f, "{name} {alias}")
                }
            }
            FromItem::Subquery { query, alias } => write!(f, "({query}) AS {alias}"),
        }
    }
}

/// An explicit join clause attached to the FROM list.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Join kind.
    pub kind: JoinKind,
    /// Joined item.
    pub item: FromItem,
    /// `ON` conditions (ANDed).
    pub on: Vec<SqlCond>,
}

impl fmt::Display for JoinClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kw = match self.kind {
            JoinKind::Inner => "JOIN",
            JoinKind::LeftOuter => "LEFT OUTER JOIN",
        };
        write!(f, "{kw} {} ON ", self.item)?;
        for (i, c) in self.on.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// One `SELECT` block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Output items.
    pub items: Vec<SelectItem>,
    /// Comma-separated FROM items (inner joins via WHERE).
    pub from: Vec<FromItem>,
    /// Explicit JOIN clauses applied after the comma list.
    pub joins: Vec<JoinClause>,
    /// `WHERE` conjuncts.
    pub where_: Vec<SqlCond>,
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM ")?;
        for (i, item) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        for j in &self.joins {
            write!(f, " {j}")?;
        }
        if !self.where_.is_empty() {
            write!(f, " WHERE ")?;
            for (i, c) in self.where_.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

/// A full query: optional top-level CTEs, union of selects, optional
/// ORDER BY.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Top-level `WITH name AS (…)` definitions (statement level only;
    /// empty for subqueries and union branches).
    pub ctes: Vec<(String, Query)>,
    /// `UNION ALL` branches; a plain select has exactly one.
    pub branches: Vec<SelectStmt>,
    /// `ORDER BY` output-column names.
    pub order_by: Vec<String>,
}

impl Query {
    /// A single-select query.
    pub fn select(stmt: SelectStmt) -> Query {
        Query {
            ctes: Vec::new(),
            branches: vec![stmt],
            order_by: Vec::new(),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.ctes.is_empty() {
            write!(f, "WITH ")?;
            for (i, (name, def)) in self.ctes.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{name} AS ({def})")?;
            }
            write!(f, " ")?;
        }
        for (i, b) in self.branches.iter().enumerate() {
            if i > 0 {
                write!(f, " UNION ALL ")?;
            }
            if self.branches.len() > 1 {
                write!(f, "({b})")?;
            } else {
                write!(f, "{b}")?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY {}", self.order_by.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_select() -> SelectStmt {
        SelectStmt {
            distinct: false,
            items: vec![
                SelectItem {
                    expr: SqlExpr::qcol("s", "suppkey"),
                    alias: Some("s_suppkey".into()),
                },
                SelectItem {
                    expr: SqlExpr::IntLit(1),
                    alias: Some("L1".into()),
                },
            ],
            from: vec![FromItem::Table {
                name: "Supplier".into(),
                alias: "s".into(),
            }],
            joins: vec![],
            where_: vec![SqlCond {
                left: SqlExpr::qcol("s", "suppkey"),
                op: CmpOp::Gt,
                right: SqlExpr::IntLit(5),
            }],
        }
    }

    #[test]
    fn print_simple_select() {
        assert_eq!(
            Query::select(simple_select()).to_string(),
            "SELECT s.suppkey AS s_suppkey, 1 AS L1 FROM Supplier s WHERE s.suppkey > 5"
        );
    }

    #[test]
    fn print_union_and_order_by() {
        let q = Query {
            ctes: Vec::new(),
            branches: vec![simple_select(), simple_select()],
            order_by: vec!["s_suppkey".into()],
        };
        let txt = q.to_string();
        assert!(txt.contains(") UNION ALL ("));
        assert!(txt.ends_with("ORDER BY s_suppkey"));
    }

    #[test]
    fn print_left_outer_join() {
        let j = JoinClause {
            kind: JoinKind::LeftOuter,
            item: FromItem::Table {
                name: "Nation".into(),
                alias: "n".into(),
            },
            on: vec![SqlCond {
                left: SqlExpr::qcol("s", "nationkey"),
                op: CmpOp::Eq,
                right: SqlExpr::qcol("n", "nationkey"),
            }],
        };
        assert_eq!(
            j.to_string(),
            "LEFT OUTER JOIN Nation n ON s.nationkey = n.nationkey"
        );
    }

    #[test]
    fn print_literals() {
        assert_eq!(SqlExpr::StrLit("a'b".into()).to_string(), "'a''b'");
        assert_eq!(SqlExpr::FloatLit(2.0).to_string(), "2.0");
        assert_eq!(SqlExpr::FloatLit(2.5).to_string(), "2.5");
        assert_eq!(
            SqlExpr::Null(DataType::Str).to_string(),
            "CAST(NULL AS VARCHAR)"
        );
    }

    #[test]
    fn from_item_same_name_alias_collapses() {
        let f = FromItem::Table {
            name: "Region".into(),
            alias: "Region".into(),
        };
        assert_eq!(f.to_string(), "Region");
    }
}
