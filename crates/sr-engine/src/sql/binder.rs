//! Name resolution and lowering of SQL ASTs to executable [`Plan`]s.
//!
//! The binder plays the part of the target RDBMS's optimizer front-end: it
//! resolves names against the catalog, pushes `WHERE` equality predicates
//! between comma-joined FROM items into hash-join keys (greedily joining
//! connected items first, so paper-style `FROM a, b WHERE a.x = b.y` queries
//! never degenerate into cross products), and leaves residual predicates as
//! filters.

use sr_data::{Database, Value};

use crate::error::EngineError;
use crate::expr::{CmpOp, Expr, Predicate};
use crate::plan::{JoinKind, Plan};
use crate::sql::ast::{FromItem, Query, SelectStmt, SqlCond, SqlExpr};

/// Schemas of the CTEs visible while binding.
type CteReg = std::collections::HashMap<String, sr_data::Schema>;

/// Bind a parsed query to a plan.
pub fn bind(query: &Query, db: &Database) -> Result<Plan, EngineError> {
    // Bind statement-level CTE definitions in order; later definitions see
    // earlier ones.
    let mut reg = CteReg::new();
    let mut bound_ctes = Vec::with_capacity(query.ctes.len());
    for (name, def) in &query.ctes {
        if !def.ctes.is_empty() {
            return Err(EngineError::Bind("nested WITH is not supported".into()));
        }
        let plan = bind_inner(def, db, &reg)?;
        let schema = plan.schema(db)?;
        if reg.insert(name.clone(), schema).is_some() {
            return Err(EngineError::Bind(format!("duplicate CTE name {name}")));
        }
        bound_ctes.push((name.clone(), plan));
    }
    let body = bind_inner(query, db, &reg)?;
    let plan = if bound_ctes.is_empty() {
        body
    } else {
        Plan::With {
            ctes: bound_ctes,
            body: Box::new(body),
        }
    };
    // Validate eagerly so errors surface at bind time, not execution time.
    plan.schema(db)?;
    Ok(plan)
}

fn bind_inner(query: &Query, db: &Database, reg: &CteReg) -> Result<Plan, EngineError> {
    let mut branches = Vec::with_capacity(query.branches.len());
    for b in &query.branches {
        branches.push(bind_select(b, db, reg)?);
    }
    let plan = if branches.len() == 1 {
        branches.pop().expect("one branch")
    } else {
        Plan::OuterUnion { inputs: branches }
    };
    // ORDER BY references output column names.
    Ok(plan.sort(query.order_by.clone()))
}

/// Convenience: parse then bind.
pub fn plan_sql(sql: &str, db: &Database) -> Result<Plan, EngineError> {
    let q = crate::sql::parser::parse(sql)?;
    bind(&q, db)
}

/// Name scope: which aliases are visible and which columns each exposes.
/// The plan-level column name for `alias.col` is always `alias_col`.
#[derive(Debug, Default, Clone)]
struct Scope {
    entries: Vec<(String, Vec<String>)>,
}

impl Scope {
    fn add(&mut self, alias: &str, cols: Vec<String>) -> Result<(), EngineError> {
        if self.entries.iter().any(|(a, _)| a == alias) {
            return Err(EngineError::Bind(format!("duplicate alias {alias}")));
        }
        self.entries.push((alias.to_string(), cols));
        Ok(())
    }

    fn merge(&mut self, other: Scope) -> Result<(), EngineError> {
        for (a, cols) in other.entries {
            self.add(&a, cols)?;
        }
        Ok(())
    }

    /// Resolve a column reference to its plan-level name.
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<String, EngineError> {
        match qualifier {
            Some(q) => {
                let (_, cols) = self
                    .entries
                    .iter()
                    .find(|(a, _)| a == q)
                    .ok_or_else(|| EngineError::Bind(format!("unknown alias {q}")))?;
                if cols.iter().any(|c| c == name) {
                    Ok(format!("{q}_{name}"))
                } else {
                    Err(EngineError::Bind(format!("no column {name} in {q}")))
                }
            }
            None => {
                let mut hits = self
                    .entries
                    .iter()
                    .filter(|(_, cols)| cols.iter().any(|c| c == name))
                    .map(|(a, _)| format!("{a}_{name}"));
                match (hits.next(), hits.next()) {
                    (Some(h), None) => Ok(h),
                    (None, _) => Err(EngineError::Bind(format!("unknown column {name}"))),
                    (Some(_), Some(_)) => {
                        Err(EngineError::Bind(format!("ambiguous column {name}")))
                    }
                }
            }
        }
    }

    /// Can this scope resolve the reference?
    fn can_resolve(&self, e: &SqlExpr) -> bool {
        match e {
            SqlExpr::ColRef { qualifier, name } => self.resolve(qualifier.as_deref(), name).is_ok(),
            _ => true,
        }
    }
}

fn bind_expr(e: &SqlExpr, scope: &Scope) -> Result<Expr, EngineError> {
    Ok(match e {
        SqlExpr::ColRef { qualifier, name } => {
            Expr::Col(scope.resolve(qualifier.as_deref(), name)?)
        }
        SqlExpr::IntLit(i) => Expr::Lit(Value::Int(*i)),
        SqlExpr::FloatLit(x) => Expr::Lit(Value::Float(*x)),
        SqlExpr::StrLit(s) => Expr::Lit(Value::str(s)),
        SqlExpr::Null(t) => Expr::TypedNull(*t),
    })
}

fn bind_cond(c: &SqlCond, scope: &Scope) -> Result<Predicate, EngineError> {
    Ok(Predicate::new(
        bind_expr(&c.left, scope)?,
        c.op,
        bind_expr(&c.right, scope)?,
    ))
}

/// Bind a FROM item to a plan and its scope contribution.
fn bind_from_item(
    item: &FromItem,
    db: &Database,
    reg: &CteReg,
) -> Result<(Plan, Scope), EngineError> {
    match item {
        FromItem::Table { name, alias } => {
            // CTE names shadow base tables.
            if let Some(schema) = reg.get(name) {
                let cols: Vec<String> = schema.names().map(str::to_string).collect();
                let mut scope = Scope::default();
                scope.add(alias, cols)?;
                return Ok((
                    Plan::CteScan {
                        cte: name.clone(),
                        alias: alias.clone(),
                        schema: schema.clone(),
                    },
                    scope,
                ));
            }
            let t = db.table(name)?;
            let cols: Vec<String> = t.schema().names().map(str::to_string).collect();
            let mut scope = Scope::default();
            scope.add(alias, cols)?;
            Ok((Plan::scan(name.clone(), alias.clone()), scope))
        }
        FromItem::Subquery { query, alias } => {
            if !query.ctes.is_empty() {
                return Err(EngineError::Bind(
                    "WITH inside a subquery is not supported".into(),
                ));
            }
            let inner = bind_inner(query, db, reg)?;
            let inner_schema = inner.schema(db)?;
            let cols: Vec<String> = inner_schema.names().map(str::to_string).collect();
            // Re-qualify: output column `c` becomes `alias_c`.
            let items = cols
                .iter()
                .map(|c| (format!("{alias}_{c}"), Expr::col(c.clone())))
                .collect();
            let mut scope = Scope::default();
            scope.add(alias, cols)?;
            Ok((inner.project(items), scope))
        }
    }
}

/// Does the condition equate a column resolvable only in `left` with one
/// resolvable only in `right`? Returns plan-level key names `(l, r)`.
fn as_join_keys(c: &SqlCond, left: &Scope, right: &Scope) -> Option<(String, String)> {
    if c.op != CmpOp::Eq {
        return None;
    }
    let (lq, ln, rq, rn) = match (&c.left, &c.right) {
        (
            SqlExpr::ColRef {
                qualifier: lq,
                name: ln,
            },
            SqlExpr::ColRef {
                qualifier: rq,
                name: rn,
            },
        ) => (lq, ln, rq, rn),
        _ => return None,
    };
    let l_in_left = left.resolve(lq.as_deref(), ln).ok();
    let l_in_right = right.resolve(lq.as_deref(), ln).ok();
    let r_in_left = left.resolve(rq.as_deref(), rn).ok();
    let r_in_right = right.resolve(rq.as_deref(), rn).ok();
    match (l_in_left, l_in_right, r_in_left, r_in_right) {
        (Some(l), None, None, Some(r)) => Some((l, r)),
        (None, Some(r), Some(l), None) => Some((l, r)),
        _ => None,
    }
}

fn bind_select(stmt: &SelectStmt, db: &Database, reg: &CteReg) -> Result<Plan, EngineError> {
    // Bind every comma-FROM item.
    let mut pending: Vec<(Plan, Scope)> = stmt
        .from
        .iter()
        .map(|f| bind_from_item(f, db, reg))
        .collect::<Result<_, _>>()?;
    if pending.is_empty() {
        return Err(EngineError::Bind("empty FROM".into()));
    }

    let mut conds: Vec<SqlCond> = stmt.where_.clone();
    let (mut acc_plan, mut acc_scope) = pending.remove(0);

    // Greedily attach the next FROM item that shares an equality predicate
    // with what we have so far; fall back to declaration order (cross join).
    while !pending.is_empty() {
        let pick = pending
            .iter()
            .position(|(_, s)| {
                conds
                    .iter()
                    .any(|c| as_join_keys(c, &acc_scope, s).is_some())
            })
            .unwrap_or(0);
        let (rplan, rscope) = pending.remove(pick);
        let mut keys = Vec::new();
        conds.retain(|c| match as_join_keys(c, &acc_scope, &rscope) {
            Some(k) => {
                keys.push(k);
                false
            }
            None => true,
        });
        acc_plan = acc_plan.join(rplan, JoinKind::Inner, keys);
        acc_scope.merge(rscope)?;
    }

    // Explicit JOIN clauses, in order.
    for j in &stmt.joins {
        let (rplan, rscope) = bind_from_item(&j.item, db, reg)?;
        let mut keys = Vec::new();
        let mut residual: Vec<Predicate> = Vec::new();
        let mut combined = acc_scope.clone();
        combined.merge(rscope.clone())?;
        for c in &j.on {
            if let Some(k) = as_join_keys(c, &acc_scope, &rscope) {
                keys.push(k);
            } else if j.kind == JoinKind::Inner
                && combined.can_resolve(&c.left)
                && combined.can_resolve(&c.right)
            {
                residual.push(bind_cond(c, &combined)?);
            } else {
                return Err(EngineError::Bind(format!(
                    "unsupported ON condition for {:?} join: {c}",
                    j.kind
                )));
            }
        }
        acc_plan = acc_plan.join(rplan, j.kind, keys).filter(residual);
        acc_scope = combined;
    }

    // Residual WHERE predicates.
    let preds = conds
        .iter()
        .map(|c| bind_cond(c, &acc_scope))
        .collect::<Result<Vec<_>, _>>()?;
    acc_plan = acc_plan.filter(preds);

    // Projection.
    let items = stmt
        .items
        .iter()
        .map(|item| {
            let name = match (&item.alias, &item.expr) {
                (Some(a), _) => a.clone(),
                (None, SqlExpr::ColRef { qualifier, name }) => match qualifier {
                    Some(q) => format!("{q}_{name}"),
                    None => acc_scope.resolve(None, name)?,
                },
                (None, other) => {
                    return Err(EngineError::Bind(format!(
                        "select item {other} needs an alias"
                    )));
                }
            };
            Ok((name, bind_expr(&item.expr, &acc_scope)?))
        })
        .collect::<Result<Vec<_>, EngineError>>()?;
    acc_plan = acc_plan.project(items);

    if stmt.distinct {
        acc_plan = Plan::Distinct {
            input: Box::new(acc_plan),
        };
    }
    Ok(acc_plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use sr_data::{row, DataType, Schema, Table};

    fn db() -> Database {
        let mut db = Database::new();
        let mut s = Table::new(
            "Supplier",
            Schema::of(&[
                ("suppkey", DataType::Int),
                ("name", DataType::Str),
                ("nationkey", DataType::Int),
            ]),
        );
        s.insert_all([
            row![1i64, "Acme", 10i64],
            row![2i64, "Bolt", 20i64],
            row![3i64, "Coil", 10i64],
        ])
        .unwrap();
        let mut n = Table::new(
            "Nation",
            Schema::of(&[("nationkey", DataType::Int), ("name", DataType::Str)]),
        );
        n.insert_all([row![10i64, "USA"], row![20i64, "Spain"]])
            .unwrap();
        let mut ps = Table::new(
            "PartSupp",
            Schema::of(&[("partkey", DataType::Int), ("suppkey", DataType::Int)]),
        );
        ps.insert_all([row![100i64, 1i64], row![101i64, 1i64], row![102i64, 3i64]])
            .unwrap();
        db.add_table(s);
        db.add_table(n);
        db.add_table(ps);
        db
    }

    #[test]
    fn where_equalities_become_hash_joins() {
        let db = db();
        let plan = plan_sql(
            "SELECT s.name AS sn, n.name AS nn FROM Supplier s, Nation n \
             WHERE s.nationkey = n.nationkey",
            &db,
        )
        .unwrap();
        // The plan must contain a Join with keys, not a cross join + filter.
        let txt = plan.to_string();
        assert!(
            txt.contains("InnerJoin [s_nationkey = n_nationkey]"),
            "got:\n{txt}"
        );
        let rs = execute(&plan, &db).unwrap();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn from_order_does_not_force_cross_join() {
        let db = db();
        // ps connects to s, s connects to n; listing n between them must not
        // produce a cross join.
        let plan = plan_sql(
            "SELECT ps.partkey AS pk, n.name AS nn FROM PartSupp ps, Nation n, Supplier s \
             WHERE s.suppkey = ps.suppkey AND s.nationkey = n.nationkey",
            &db,
        )
        .unwrap();
        let txt = plan.to_string();
        assert!(!txt.contains("InnerJoin []"), "cross join in:\n{txt}");
        let rs = execute(&plan, &db).unwrap();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn left_outer_join_on_subquery() {
        let db = db();
        let plan = plan_sql(
            "SELECT s.suppkey AS k, q.pk AS pk FROM Supplier s \
             LEFT OUTER JOIN (SELECT ps.suppkey AS sk, ps.partkey AS pk FROM PartSupp ps) AS q \
             ON s.suppkey = q.sk ORDER BY k, pk",
            &db,
        )
        .unwrap();
        let rs = execute(&plan, &db).unwrap();
        assert_eq!(rs.len(), 4, "supplier 2 padded");
        assert_eq!(rs.rows[0].get(0), &Value::Int(1));
        assert!(rs.rows[2].get(1).is_null(), "supplier 2 has NULL pk");
    }

    #[test]
    fn union_all_aligns_by_name() {
        let db = db();
        let plan = plan_sql(
            "(SELECT 1 AS L, n.name AS nname, CAST(NULL AS INT) AS pk FROM Nation n) \
             UNION ALL \
             (SELECT 2 AS L, CAST(NULL AS VARCHAR) AS nname, ps.partkey AS pk FROM PartSupp ps) \
             ORDER BY L, nname, pk",
            &db,
        )
        .unwrap();
        let rs = execute(&plan, &db).unwrap();
        assert_eq!(rs.len(), 5);
        assert_eq!(rs.rows[0].get(0), &Value::Int(1));
        assert_eq!(rs.rows[4].get(0), &Value::Int(2));
    }

    #[test]
    fn bare_columns_resolve_when_unambiguous() {
        let db = db();
        let plan = plan_sql("SELECT suppkey FROM Supplier s WHERE suppkey = 2", &db).unwrap();
        let rs = execute(&plan, &db).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.schema.names().collect::<Vec<_>>(), vec!["s_suppkey"]);
    }

    #[test]
    fn ambiguous_bare_column_rejected() {
        let db = db();
        // `name` exists in both Supplier and Nation.
        let err = plan_sql(
            "SELECT name FROM Supplier s, Nation n WHERE s.nationkey = n.nationkey",
            &db,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Bind(m) if m.contains("ambiguous")));
    }

    #[test]
    fn unknown_names_rejected() {
        let db = db();
        assert!(plan_sql("SELECT x.y FROM Supplier s", &db).is_err());
        assert!(plan_sql("SELECT s.nope FROM Supplier s", &db).is_err());
        assert!(plan_sql("SELECT s.suppkey FROM Missing s", &db).is_err());
    }

    #[test]
    fn literal_select_needs_alias() {
        let db = db();
        assert!(plan_sql("SELECT 1 FROM Supplier s", &db).is_err());
        assert!(plan_sql("SELECT 1 AS one FROM Supplier s", &db).is_ok());
    }

    #[test]
    fn distinct_binds() {
        let db = db();
        let plan = plan_sql("SELECT DISTINCT s.nationkey AS nk FROM Supplier s", &db).unwrap();
        let rs = execute(&plan, &db).unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn with_clause_binds_and_executes() {
        let db = db();
        let plan = plan_sql(
            "WITH sn AS (SELECT s.suppkey AS k, n.name AS nn FROM Supplier s, Nation n              WHERE s.nationkey = n.nationkey)              SELECT a.k AS k1, b.k AS k2 FROM sn a, sn b WHERE a.k = b.k ORDER BY k1",
            &db,
        )
        .unwrap();
        assert!(matches!(plan, Plan::With { .. }));
        let rs = execute(&plan, &db).unwrap();
        assert_eq!(rs.len(), 3, "self-join of the CTE on its key");
    }

    #[test]
    fn with_roundtrips_through_sql_text() {
        let db = db();
        let sql = "WITH sn AS (SELECT s.suppkey AS k, s.name AS nm FROM Supplier s)                    SELECT x.nm AS nm FROM sn x ORDER BY nm";
        let plan = plan_sql(sql, &db).unwrap();
        let printed = crate::sql::to_sql(&plan, &db).unwrap();
        assert!(printed.starts_with("WITH sn AS ("), "{printed}");
        let again = plan_sql(&printed, &db).unwrap();
        let a = execute(&plan, &db).unwrap();
        let b = execute(&again, &db).unwrap();
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn later_cte_sees_earlier_cte() {
        let db = db();
        let plan = plan_sql(
            "WITH a AS (SELECT s.suppkey AS k FROM Supplier s),                   b AS (SELECT x.k AS k FROM a x WHERE x.k > 1)              SELECT y.k AS k FROM b y ORDER BY k",
            &db,
        )
        .unwrap();
        let rs = execute(&plan, &db).unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn duplicate_cte_name_rejected() {
        let db = db();
        let err = plan_sql(
            "WITH a AS (SELECT s.suppkey AS k FROM Supplier s),                   a AS (SELECT s.suppkey AS k FROM Supplier s)              SELECT x.k AS k FROM a x",
            &db,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Bind(m) if m.contains("duplicate CTE")));
    }

    #[test]
    fn unreferenced_cte_is_harmless() {
        let db = db();
        let plan = plan_sql(
            "WITH unused AS (SELECT s.suppkey AS k FROM Supplier s)              SELECT s.suppkey AS k FROM Supplier s ORDER BY k",
            &db,
        )
        .unwrap();
        assert_eq!(execute(&plan, &db).unwrap().len(), 3);
    }

    #[test]
    fn duplicate_alias_rejected() {
        let db = db();
        let err = plan_sql(
            "SELECT s.suppkey AS k FROM Supplier s, Supplier s WHERE s.suppkey = s.suppkey",
            &db,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Bind(m) if m.contains("duplicate alias")));
    }
}
