//! `EXPLAIN ANALYZE`: the optimized plan tree annotated per operator with
//! actual rows, calls, self/cumulative time, and — where the cost model
//! produced a cardinality estimate — estimated rows and the **Q-error**.
//!
//! The Q-error (`max(est/act, act/est)`) is the factor by which the
//! estimate missed, direction-free: 1 is perfect, 2 means off by 2× either
//! way. It is the accuracy measure behind the paper's §5.1 oracle
//! evaluation (Fig. 18 plots picked-plan cost against the true optimum,
//! which degrades exactly as these per-operator errors compound), so
//! tracking it per node shows *which* operators mislead `genPlan`'s greedy
//! search.

use std::time::Duration;

use crate::exec::PlanProfile;
use crate::plan::Plan;

/// The Q-error of an estimate against an actual count:
/// `max(est/act, act/est)` with both sides clamped to ≥ 1 row, so the
/// result is always finite and ≥ 1 (an estimate of 0 for an empty result
/// is perfect, not 0/0).
pub fn q_error(est: f64, act: f64) -> f64 {
    let e = est.max(1.0);
    let a = act.max(1.0);
    (e / a).max(a / e)
}

/// One operator's annotated row in an [`ExplainAnalysis`].
#[derive(Debug, Clone)]
pub struct AnalyzedNode {
    /// Preorder node id (see [`Plan::children`]).
    pub id: usize,
    /// Indentation depth in the rendered tree.
    pub depth: usize,
    /// Operator header, matching the plan's `Display` rendering.
    pub label: String,
    /// Operator kind name (`scan`, `join`, …).
    pub op: &'static str,
    /// Times the node was evaluated.
    pub calls: u64,
    /// Rows the node actually produced.
    pub actual_rows: u64,
    /// Estimated rows from the cost model (`None` if not estimated).
    pub est_rows: Option<f64>,
    /// Q-error of the estimate (`None` if not estimated).
    pub q_error: Option<f64>,
    /// Wall time including children.
    pub total_time: Duration,
    /// Wall time excluding direct children.
    pub self_time: Duration,
}

/// A complete `EXPLAIN ANALYZE` result for one query.
#[derive(Debug, Clone)]
pub struct ExplainAnalysis {
    /// The SQL text that was analyzed.
    pub sql: String,
    /// Per-operator annotations in preorder.
    pub nodes: Vec<AnalyzedNode>,
    /// Sorts elided by order-property propagation during optimization.
    pub sorts_elided: u64,
    /// Wall time of the analyzed execution.
    pub execute_time: Duration,
    /// Rows in the final result.
    pub row_count: u64,
}

impl ExplainAnalysis {
    /// Combine a plan, its per-node execution profile, and per-node
    /// cardinality estimates (indexed by preorder id; `NaN` = no estimate)
    /// into an annotated tree.
    pub fn assemble(
        plan: &Plan,
        profile: &PlanProfile,
        est_rows: &[f64],
        sorts_elided: u64,
        execute_time: Duration,
        row_count: u64,
        sql: String,
    ) -> ExplainAnalysis {
        let mut nodes = Vec::with_capacity(profile.nodes.len());
        walk(plan, 0, 0, &mut |p, id, depth| {
            let stat = &profile.nodes[id];
            let est = est_rows.get(id).copied().filter(|e| e.is_finite());
            nodes.push(AnalyzedNode {
                id,
                depth,
                label: node_label(p),
                op: stat.op,
                calls: stat.calls,
                actual_rows: stat.rows_out,
                est_rows: est,
                q_error: est.map(|e| q_error(e, stat.rows_out as f64)),
                total_time: stat.total_time,
                self_time: stat.self_time,
            });
        });
        ExplainAnalysis {
            sql,
            nodes,
            sorts_elided,
            execute_time,
            row_count,
        }
    }

    /// The node with the largest Q-error, if any node has an estimate.
    pub fn worst_offender(&self) -> Option<&AnalyzedNode> {
        self.nodes
            .iter()
            .filter(|n| n.q_error.is_some())
            .max_by(|a, b| a.q_error.unwrap().total_cmp(&b.q_error.unwrap()))
    }

    /// Human-readable annotated tree (EXPLAIN ANALYZE output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "EXPLAIN ANALYZE  ({} rows in {:.3} ms, {} sort{} elided)",
            self.row_count,
            self.execute_time.as_secs_f64() * 1e3,
            self.sorts_elided,
            if self.sorts_elided == 1 { "" } else { "s" },
        );
        for n in &self.nodes {
            let pad = "  ".repeat(n.depth);
            let _ = write!(
                out,
                "{pad}{}  (actual rows={} calls={} self={:.3} ms total={:.3} ms",
                n.label,
                n.actual_rows,
                n.calls,
                n.self_time.as_secs_f64() * 1e3,
                n.total_time.as_secs_f64() * 1e3,
            );
            match (n.est_rows, n.q_error) {
                (Some(est), Some(q)) => {
                    let _ = write!(out, " est rows={est:.0} q-err={q:.2}");
                }
                _ => {
                    let _ = write!(out, " est rows=- q-err=-");
                }
            }
            let _ = writeln!(out, ")");
        }
        if let Some(w) = self.worst_offender() {
            let _ = writeln!(
                out,
                "worst q-error: {:.2} at node {} ({})",
                w.q_error.unwrap(),
                w.id,
                w.label
            );
        }
        out
    }

    /// Machine-readable form (one object per operator, preorder).
    pub fn to_json(&self) -> sr_obs::Json {
        use sr_obs::Json;
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                Json::obj(vec![
                    ("id", Json::UInt(n.id as u64)),
                    ("depth", Json::UInt(n.depth as u64)),
                    ("label", Json::Str(n.label.clone())),
                    ("op", Json::Str(n.op.to_string())),
                    ("calls", Json::UInt(n.calls)),
                    ("actual_rows", Json::UInt(n.actual_rows)),
                    (
                        "est_rows",
                        n.est_rows.map(Json::Float).unwrap_or(Json::Null),
                    ),
                    ("q_error", n.q_error.map(Json::Float).unwrap_or(Json::Null)),
                    ("self_ms", Json::Float(n.self_time.as_secs_f64() * 1e3)),
                    ("total_ms", Json::Float(n.total_time.as_secs_f64() * 1e3)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("sql", Json::Str(self.sql.clone())),
            ("rows", Json::UInt(self.row_count)),
            (
                "execute_ms",
                Json::Float(self.execute_time.as_secs_f64() * 1e3),
            ),
            ("sorts_elided", Json::UInt(self.sorts_elided)),
            (
                "worst_q_error",
                self.worst_offender()
                    .and_then(|n| n.q_error)
                    .map(Json::Float)
                    .unwrap_or(Json::Null),
            ),
            ("nodes", Json::Arr(nodes)),
        ])
    }
}

/// Preorder walk carrying `(node, id, depth)`, in the same id order as
/// [`Plan::children`] / the executor / the cost model. Returns the subtree
/// size so siblings can offset their ids.
fn walk(plan: &Plan, id: usize, depth: usize, f: &mut impl FnMut(&Plan, usize, usize)) -> usize {
    f(plan, id, depth);
    let mut child_id = id + 1;
    for child in plan.children() {
        child_id += walk(child, child_id, depth + 1, f);
    }
    child_id - id
}

/// One-line operator header, mirroring the plan's `Display` rendering
/// (which prints one such line per node, children indented).
fn node_label(plan: &Plan) -> String {
    match plan {
        Plan::Scan { table, alias } => format!("Scan {table} AS {alias}"),
        Plan::Filter { predicates, .. } => {
            let ps: Vec<String> = predicates.iter().map(|p| p.to_string()).collect();
            format!("Filter [{}]", ps.join(" AND "))
        }
        Plan::Project { items, .. } => {
            let is: Vec<String> = items.iter().map(|(n, e)| format!("{e} AS {n}")).collect();
            format!("Project [{}]", is.join(", "))
        }
        Plan::Join { kind, on, .. } => {
            let os: Vec<String> = on.iter().map(|(l, r)| format!("{l} = {r}")).collect();
            format!("{kind:?}Join [{}]", os.join(" AND "))
        }
        Plan::OuterUnion { .. } => "OuterUnion".to_string(),
        Plan::Sort { keys, .. } => format!("Sort [{}]", keys.join(", ")),
        Plan::Distinct { .. } => "Distinct".to_string(),
        Plan::With { ctes, .. } => {
            let names: Vec<&str> = ctes.iter().map(|(n, _)| n.as_str()).collect();
            format!("With [{}]", names.join(", "))
        }
        Plan::CteScan { cte, alias, .. } => format!("CteScan {cte} AS {alias}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::estimate_with_nodes;
    use crate::exec::execute_analyzed;
    use crate::plan::JoinKind;
    use sr_data::{row, DataType, Database, Schema, Table};
    use std::time::Instant;

    #[test]
    fn q_error_is_finite_and_at_least_one() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(20.0, 10.0), 2.0);
        assert_eq!(q_error(10.0, 20.0), 2.0);
        // Zero actuals / estimates clamp instead of dividing by zero.
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert_eq!(q_error(5.0, 0.0), 5.0);
        assert_eq!(q_error(0.0, 5.0), 5.0);
        for (e, a) in [(1e12, 1.0), (1.0, 1e12), (0.5, 0.25)] {
            let q = q_error(e, a);
            assert!(q.is_finite() && q >= 1.0, "q_error({e},{a}) = {q}");
        }
    }

    fn db() -> Database {
        let mut db = Database::new();
        let mut s = Table::new(
            "S",
            Schema::of(&[("k", DataType::Int), ("g", DataType::Int)]),
        );
        for i in 0..50i64 {
            s.insert(row![i, i % 5]).unwrap();
        }
        let mut t = Table::new("T", Schema::of(&[("k", DataType::Int)]));
        for i in 0..5i64 {
            t.insert(row![i]).unwrap();
        }
        db.add_table(s);
        db.add_table(t);
        db
    }

    #[test]
    fn assemble_lines_up_estimates_with_actuals() {
        let db = db();
        let p = Plan::scan("S", "s")
            .join(
                Plan::scan("T", "t"),
                JoinKind::Inner,
                vec![("s_g".into(), "t_k".into())],
            )
            .sort(vec!["s_k".into()]);
        let (_, est) = estimate_with_nodes(&p, &db).unwrap();
        let start = Instant::now();
        let (rs, _, pp) = execute_analyzed(&p, &db).unwrap();
        let analysis = ExplainAnalysis::assemble(
            &p,
            &pp,
            &est,
            0,
            start.elapsed(),
            rs.len() as u64,
            "SELECT ...".into(),
        );
        assert_eq!(analysis.nodes.len(), 4);
        // Depths: Sort=0, Join=1, Scans=2.
        assert_eq!(
            analysis.nodes.iter().map(|n| n.depth).collect::<Vec<_>>(),
            vec![0, 1, 2, 2]
        );
        for n in &analysis.nodes {
            let q = n.q_error.expect("all nodes estimated");
            assert!(q.is_finite() && q >= 1.0);
        }
        // Scans are estimated exactly from table stats.
        assert_eq!(analysis.nodes[2].q_error, Some(1.0));
        assert_eq!(analysis.nodes[3].q_error, Some(1.0));
        let rendered = analysis.render();
        assert!(rendered.contains("EXPLAIN ANALYZE"), "{rendered}");
        assert!(rendered.contains("actual rows=50"), "{rendered}");
        assert!(rendered.contains("worst q-error"), "{rendered}");
        assert!(rendered.contains("  Scan S AS s"), "{rendered}");
        let json = analysis.to_json().render();
        let parsed = sr_obs::Json::parse(&json).unwrap();
        let nodes = parsed.get("nodes").and_then(sr_obs::Json::as_arr).unwrap();
        assert_eq!(nodes.len(), 4);
        assert!(parsed.get("worst_q_error").is_some());
    }

    #[test]
    fn missing_estimates_render_as_dashes() {
        let db = db();
        let p = Plan::scan("T", "t");
        let (_, _, pp) = execute_analyzed(&p, &db).unwrap();
        // NaN = "no estimate for this node".
        let analysis =
            ExplainAnalysis::assemble(&p, &pp, &[f64::NAN], 0, Duration::ZERO, 5, "q".into());
        assert!(analysis.nodes[0].q_error.is_none());
        assert!(analysis.worst_offender().is_none());
        assert!(analysis.render().contains("q-err=-"));
    }
}
