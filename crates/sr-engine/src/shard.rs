//! Stats-driven range sharding of a component query.
//!
//! The paper's middle-ware ships each component query as one sequential
//! scan-sort pipeline, so a single large component (e.g. the LineItem-heavy
//! stream of query2) bounds wall-clock no matter how many cores the server
//! has. [`split_plan`] carves such a plan into `k` **key-range shards**
//! along its leading non-constant sort key, using the same catalog
//! statistics the cost oracle consumes: the `[min, max]` range of the shard
//! column is split uniformly into `k` half-open intervals, each shard plan
//! filters to one interval, and the range predicate is pushed to the base
//! scan by the regular [`push_filters`] pass.
//!
//! Order preservation is by construction, not by re-merging comparisons:
//! the shard column is the first sort key that is not single-valued, every
//! earlier key is constant across all rows, and the intervals are disjoint
//! and ascending — so concatenating the (individually sorted) shard outputs
//! in shard order *is* the sorted stream, byte-identical to the unsharded
//! run for every shard count.
//!
//! Sharding degrades to `None` (caller runs unsharded) whenever any
//! precondition fails: no usable sort key, a non-integer or nullable shard
//! column (the predicate language has no `IS NULL`, so NULL rows would be
//! dropped by every range), missing stats, or a value range too narrow to
//! split.

use std::collections::HashMap;

use sr_data::{DataType, Database, Value};

use crate::expr::{CmpOp, Expr, Predicate};
use crate::optimize::push_filters;
use crate::ordering::order_info;
use crate::plan::Plan;

/// A component query split into value-disjoint key-range shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// One executable plan per shard, in ascending key-range order.
    /// Concatenating their outputs in this order reproduces the unsharded
    /// result exactly.
    pub plans: Vec<Plan>,
    /// The column the ranges partition (the first non-constant sort key).
    pub column: String,
    /// Ascending range boundaries: shard `i` holds rows with
    /// `boundaries[i-1] <= column < boundaries[i]` (unbounded at the ends).
    pub boundaries: Vec<i64>,
}

impl ShardPlan {
    /// Number of shards.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Always false — a `ShardPlan` holds at least two shards.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

/// Split `plan` into (up to) `k` key-range shards, or `None` when the plan
/// cannot be sharded safely. See the module docs for the preconditions.
pub fn split_plan(plan: &Plan, db: &Database, k: usize) -> Option<ShardPlan> {
    if k < 2 {
        return None;
    }
    let info = order_info(plan, db);
    // The delivered order: explicit keys under a top `Sort`, otherwise the
    // derived ordering of a sort-elided plan.
    let keys: &[String] = match plan {
        Plan::Sort { keys, .. } => keys,
        _ => &info.ordering,
    };
    // Shard on the first sort key that actually varies; every earlier key
    // is single-valued across rows, so range-disjointness on this column
    // makes ordered concatenation a correct merge.
    let column = keys
        .iter()
        .find(|key| !info.constants.contains(*key))?
        .clone();
    // The shard column must be a non-nullable integer: the predicate
    // language has no `IS NULL`, so a NULL would match no range and the
    // row would silently vanish. (Outer-join-padded columns are nullable
    // in the output schema and are rejected here automatically.)
    let schema = plan.schema(db).ok()?;
    let col = schema.column(schema.position(&column)?);
    if col.nullable || col.dtype != DataType::Int {
        return None;
    }
    let (min, max, distinct) = resolve_range(plan, db, &column, &HashMap::new())?;
    let boundaries = range_boundaries(min, max, distinct, k);
    if boundaries.is_empty() {
        return None;
    }
    let plans = (0..=boundaries.len())
        .map(|i| {
            let mut preds = Vec::with_capacity(2);
            if i > 0 {
                preds.push(Predicate::new(
                    Expr::col(&column),
                    CmpOp::Ge,
                    Expr::Lit(Value::Int(boundaries[i - 1])),
                ));
            }
            if i < boundaries.len() {
                preds.push(Predicate::new(
                    Expr::col(&column),
                    CmpOp::Lt,
                    Expr::Lit(Value::Int(boundaries[i])),
                ));
            }
            // Re-sorting per shard is exact: the executor's sort is stable
            // and each shard holds a contiguous key range, so the shard's
            // own sort reproduces the rows the unsharded sort would have
            // placed in that range, in the same relative order. For an
            // elided plan the top-level filter preserves delivered order.
            let sharded = match plan {
                Plan::Sort { input, keys } => (**input).clone().filter(preds).sort(keys.clone()),
                other => other.clone().filter(preds),
            };
            push_filters(sharded, db)
        })
        .collect::<Result<Vec<_>, _>>()
        .ok()?;
    Some(ShardPlan {
        plans,
        column,
        boundaries,
    })
}

/// Uniformly split `[min, max]` into at most `k` ascending, deduplicated
/// interior boundaries (at most `distinct` shards are worth having). Empty
/// when the range cannot support at least two non-empty intervals.
pub fn range_boundaries(min: i64, max: i64, distinct: usize, k: usize) -> Vec<i64> {
    let k_eff = k.min(distinct.max(1));
    if k_eff < 2 || min >= max {
        return Vec::new();
    }
    // i128 keeps `span * i` exact for any i64 range.
    let span = max as i128 - min as i128 + 1;
    let mut out = Vec::with_capacity(k_eff - 1);
    for i in 1..k_eff {
        let b = (min as i128 + span * i as i128 / k_eff as i128) as i64;
        if b > min && b <= max && out.last() != Some(&b) {
            out.push(b);
        }
    }
    out
}

/// Resolve a plan output column back to catalog statistics, returning
/// `(min, max, distinct)` for its value range. Follows renames through
/// `Project`, alias prefixes through `Scan`/`CteScan`, and takes the
/// union of ranges across `OuterUnion` branches (every branch must
/// resolve — a branch without the column would contribute NULLs, already
/// excluded by the nullability check in [`split_plan`]).
fn resolve_range(
    plan: &Plan,
    db: &Database,
    column: &str,
    ctes: &HashMap<String, Plan>,
) -> Option<(i64, i64, usize)> {
    match plan {
        Plan::Scan { table, alias } => {
            let base = column.strip_prefix(&format!("{alias}_"))?;
            let stats = db.stats(table).ok()?;
            let cs = stats.column(base)?;
            match (cs.min.as_ref(), cs.max.as_ref()) {
                (Some(Value::Int(lo)), Some(Value::Int(hi))) => Some((*lo, *hi, cs.distinct)),
                _ => None,
            }
        }
        Plan::CteScan { cte, alias, .. } => {
            let base = column.strip_prefix(&format!("{alias}_"))?;
            resolve_range(ctes.get(cte)?, db, base, ctes)
        }
        Plan::Filter { input, .. } | Plan::Sort { input, .. } | Plan::Distinct { input } => {
            resolve_range(input, db, column, ctes)
        }
        Plan::Project { input, items } => {
            let (_, expr) = items.iter().find(|(name, _)| name == column)?;
            match expr {
                Expr::Col(inner) => resolve_range(input, db, inner, ctes),
                Expr::Lit(Value::Int(v)) => Some((*v, *v, 1)),
                _ => None,
            }
        }
        Plan::Join { left, right, .. } => {
            // Column names are globally unique (alias-prefixed), so the
            // column lives on exactly one side.
            resolve_range(left, db, column, ctes).or_else(|| resolve_range(right, db, column, ctes))
        }
        Plan::OuterUnion { inputs } => {
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            let mut distinct = 0usize;
            for branch in inputs {
                let (l, h, d) = resolve_range(branch, db, column, ctes)?;
                lo = lo.min(l);
                hi = hi.max(h);
                distinct = distinct.saturating_add(d);
            }
            Some((lo, hi, distinct))
        }
        Plan::With { ctes: defs, body } => {
            let mut env = ctes.clone();
            for (name, def) in defs {
                env.insert(name.clone(), def.clone());
            }
            resolve_range(body, db, column, &env)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use sr_data::{row, Column, Schema, Table};
    use std::sync::Arc;

    fn db() -> Database {
        let mut db = Database::new();
        let mut t = Table::new(
            "T",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("grp", DataType::Int),
                Column::nullable("opt", DataType::Int),
            ])
            .unwrap(),
        );
        for i in 0..100i64 {
            t.insert(row![i, i % 7, i]).unwrap();
        }
        db.add_table(t);
        db.declare_key("T", &["id"]).unwrap();
        db.declare_clustered_by("T", &["id"]).unwrap();
        db
    }

    fn sorted_plan() -> Plan {
        Plan::scan("T", "t").sort(vec!["t_id".into()])
    }

    #[test]
    fn boundaries_are_uniform_and_in_range() {
        let b = range_boundaries(0, 99, 100, 4);
        assert_eq!(b, vec![25, 50, 75]);
        let b = range_boundaries(0, 99, 100, 2);
        assert_eq!(b, vec![50]);
    }

    #[test]
    fn boundaries_degenerate_cases() {
        assert!(range_boundaries(5, 5, 1, 4).is_empty(), "single value");
        assert!(range_boundaries(9, 3, 10, 4).is_empty(), "inverted range");
        assert!(range_boundaries(0, 99, 100, 1).is_empty(), "k = 1");
        // Narrow range: fewer boundaries than requested, but all distinct.
        let b = range_boundaries(0, 2, 3, 8);
        assert_eq!(b, vec![1, 2]);
        // Extreme range must not overflow.
        let b = range_boundaries(i64::MIN, i64::MAX, usize::MAX, 2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn split_covers_all_rows_exactly_once() {
        let db = db();
        let plan = sorted_plan();
        let sp = split_plan(&plan, &db, 4).expect("shardable");
        assert_eq!(sp.column, "t_id");
        assert_eq!(sp.len(), 4);
        let whole = execute(&plan, &db).unwrap();
        let mut merged = Vec::new();
        for shard in &sp.plans {
            merged.extend(execute(shard, &db).unwrap().rows);
        }
        assert_eq!(merged, whole.rows, "ordered concat equals unsharded run");
    }

    #[test]
    fn range_filters_are_pushed_to_scan() {
        let db = db();
        let sp = split_plan(&sorted_plan(), &db, 2).unwrap();
        // After push_filters the range predicate sits below the Sort.
        for shard in &sp.plans {
            match shard {
                Plan::Sort { input, .. } => {
                    assert!(
                        matches!(**input, Plan::Filter { .. }),
                        "expected Filter under Sort, got: {shard}"
                    );
                }
                other => panic!("expected Sort-topped shard, got: {other}"),
            }
        }
    }

    #[test]
    fn constant_leading_key_is_skipped() {
        let db = db();
        // ORDER BY L1, id with L1 a literal: shard on id, not L1.
        let plan = Plan::scan("T", "t")
            .project(vec![
                ("L1".into(), Expr::lit(1i64)),
                ("id".into(), Expr::col("t_id")),
            ])
            .sort(vec!["L1".into(), "id".into()]);
        let sp = split_plan(&plan, &db, 2).expect("shardable past constant key");
        assert_eq!(sp.column, "id");
    }

    #[test]
    fn nullable_or_non_int_column_refuses() {
        let db = db();
        let nullable = Plan::scan("T", "t").sort(vec!["t_opt".into()]);
        assert!(split_plan(&nullable, &db, 4).is_none(), "nullable key");
        let unsortable = Plan::scan("T", "t");
        // Clustered order is t_id (non-nullable int) — this one shards.
        assert!(split_plan(&unsortable, &db, 4).is_some(), "elided plan");
    }

    #[test]
    fn k_below_two_refuses() {
        let db = db();
        assert!(split_plan(&sorted_plan(), &db, 1).is_none());
        assert!(split_plan(&sorted_plan(), &db, 0).is_none());
    }

    #[test]
    fn distinct_caps_shard_count() {
        let mut db = Database::new();
        let mut t = Table::new("S", Schema::of(&[("v", DataType::Int)]));
        for v in [1i64, 1, 2, 2] {
            t.insert(row![v]).unwrap();
        }
        db.add_table(t);
        db.declare_clustered_by("S", &["v"]).unwrap();
        let plan = Plan::scan("S", "s").sort(vec!["s_v".into()]);
        let sp = split_plan(&plan, &db, 8).expect("two distinct values");
        assert_eq!(sp.len(), 2, "capped at distinct count");
    }

    #[test]
    fn union_range_spans_all_branches() {
        let db = db();
        let mk = |lo: i64, hi: i64| {
            Plan::scan("T", "t")
                .filter(vec![
                    Predicate::new(Expr::col("t_id"), CmpOp::Ge, Expr::lit(lo)),
                    Predicate::new(Expr::col("t_id"), CmpOp::Lt, Expr::lit(hi)),
                ])
                .project(vec![("k".into(), Expr::col("t_id"))])
        };
        let union = Plan::OuterUnion {
            inputs: vec![mk(0, 50), mk(50, 100)],
        };
        let (lo, hi, d) = resolve_range(&union, &db, "k", &HashMap::new()).unwrap();
        assert_eq!((lo, hi), (0, 99));
        assert!(d >= 100);
    }

    #[test]
    fn with_cte_resolves_through_definition() {
        let db = db();
        let def = Plan::scan("T", "t").project(vec![("k".into(), Expr::col("t_id"))]);
        let body = Plan::CteScan {
            cte: "c".into(),
            alias: "x".into(),
            schema: def.schema(&db).unwrap(),
        };
        let plan = Plan::With {
            ctes: vec![("c".into(), def)],
            body: Box::new(body),
        };
        let r = resolve_range(&plan, &db, "x_k", &HashMap::new()).unwrap();
        assert_eq!((r.0, r.1), (0, 99));
    }

    #[test]
    fn shards_execute_via_server_stats() {
        // End to end through Arc<Database> the way the server holds it.
        let db = Arc::new(db());
        let sp = split_plan(&sorted_plan(), &db, 3).unwrap();
        let total: usize = sp
            .plans
            .iter()
            .map(|p| execute(p, &db).unwrap().rows.len())
            .sum();
        assert_eq!(total, 100);
    }
}
