//! Deterministic fault injection for the query pipeline.
//!
//! The middle-ware's target RDBMS is a machine it "does not control" (§1):
//! workers die, queries stall, connections flake. This module lets tests
//! and the CLI inject exactly those failures at fixed, named sites in the
//! execution pipeline — *deterministically*, so a fault matrix is
//! reproducible run to run:
//!
//! * [`FaultSite::Scan`] — inside the executor, as a base-table scan starts
//!   (models the RDBMS failing mid-query);
//! * [`FaultSite::Encode`] — as a result chunk is wire-encoded (models a
//!   marshalling failure);
//! * [`FaultSite::Send`] — as a chunk is handed to the streaming channel
//!   (models the connection to the client breaking).
//!
//! A [`FaultRule`] picks a site, a [`FaultKind`] (panic, fixed delay, or a
//! typed [`EngineError::Transient`]) and a trigger: the n-th hit of the
//! site (`#n`), a seeded pseudo-random probability (`%p`), or every hit.
//! Rules parse from a compact spec string (`panic@scan#2`,
//! `delay50@send`, `transient@scan%0.5`) accepted by the CLI `--fault`
//! flag and the `SR_FAULTS` environment variable; the probability stream
//! is an xorshift PRNG seeded from the plan (`SR_FAULT_SEED`), never from
//! ambient entropy.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::error::EngineError;

/// Pipeline location where a fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Executor base-table scan (fires once per scan operator).
    Scan,
    /// Wire-encoding of a result chunk.
    Encode,
    /// Handing a chunk to the streaming channel.
    Send,
}

impl FaultSite {
    const ALL: [FaultSite; 3] = [FaultSite::Scan, FaultSite::Encode, FaultSite::Send];

    fn index(self) -> usize {
        match self {
            FaultSite::Scan => 0,
            FaultSite::Encode => 1,
            FaultSite::Send => 2,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultSite::Scan => "scan",
            FaultSite::Encode => "encode",
            FaultSite::Send => "send",
        };
        write!(f, "{s}")
    }
}

impl FromStr for FaultSite {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "scan" => Ok(FaultSite::Scan),
            "encode" => Ok(FaultSite::Encode),
            "send" => Ok(FaultSite::Send),
            other => Err(format!("unknown fault site: {other:?} (scan|encode|send)")),
        }
    }
}

/// What happens when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `panic!` at the site — exercises panic isolation.
    Panic,
    /// Sleep for the given duration — exercises deadlines and stalls.
    Delay(Duration),
    /// Return [`EngineError::Transient`] — exercises retry.
    Transient,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Panic => write!(f, "panic"),
            FaultKind::Delay(d) => write!(f, "delay{}", d.as_millis()),
            FaultKind::Transient => write!(f, "transient"),
        }
    }
}

/// When a rule fires, relative to the per-site hit counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultTrigger {
    /// On every hit of the site.
    Always,
    /// Only on the n-th hit (1-based) of the site.
    Nth(u64),
    /// On each hit with this probability, drawn from the seeded PRNG.
    Prob(f64),
}

/// One injection rule: fire `kind` at `site` when `trigger` says so.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Where the fault fires.
    pub site: FaultSite,
    /// What the fault does.
    pub kind: FaultKind,
    /// When it fires.
    pub trigger: FaultTrigger,
}

impl FaultRule {
    /// Parse one rule from the `kind@site[#n|%p]` spec syntax.
    pub fn parse(spec: &str) -> Result<FaultRule, String> {
        let (kind_s, rest) = spec
            .split_once('@')
            .ok_or_else(|| format!("fault rule {spec:?} lacks '@site'"))?;
        let kind = if kind_s == "panic" {
            FaultKind::Panic
        } else if kind_s == "transient" {
            FaultKind::Transient
        } else if let Some(ms) = kind_s.strip_prefix("delay") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("bad delay millis in {spec:?}"))?;
            FaultKind::Delay(Duration::from_millis(ms))
        } else {
            return Err(format!(
                "unknown fault kind {kind_s:?} (panic|delay<ms>|transient)"
            ));
        };
        let (site_s, trigger) = if let Some((site, n)) = rest.split_once('#') {
            let n: u64 = n
                .parse()
                .map_err(|_| format!("bad hit index in {spec:?}"))?;
            if n == 0 {
                return Err(format!("hit index in {spec:?} is 1-based"));
            }
            (site, FaultTrigger::Nth(n))
        } else if let Some((site, p)) = rest.split_once('%') {
            let p: f64 = p
                .parse()
                .map_err(|_| format!("bad probability in {spec:?}"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability in {spec:?} outside [0, 1]"));
            }
            (site, FaultTrigger::Prob(p))
        } else {
            (rest, FaultTrigger::Always)
        };
        Ok(FaultRule {
            site: site_s.parse()?,
            kind,
            trigger,
        })
    }
}

/// A parsed, seeded set of fault rules — what the CLI `--fault` flags or
/// `SR_FAULTS` build, and what [`crate::server::Server::with_faults`]
/// consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// PRNG seed for probabilistic triggers.
    pub seed: u64,
    /// Rules, all active simultaneously.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parse a comma-separated rule list (see [`FaultRule::parse`]).
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let rules = spec
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| FaultRule::parse(s.trim()))
            .collect::<Result<Vec<_>, _>>()?;
        if rules.is_empty() {
            return Err("empty fault spec".into());
        }
        Ok(FaultPlan { seed, rules })
    }

    /// Build a plan from `SR_FAULTS` / `SR_FAULT_SEED` (seed defaults to
    /// 0). Returns `None` when `SR_FAULTS` is unset, `Err` on a malformed
    /// spec — a typo must not silently disable the matrix.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        let Ok(spec) = std::env::var("SR_FAULTS") else {
            return Ok(None);
        };
        let seed = match std::env::var("SR_FAULT_SEED") {
            Ok(s) => s.parse().map_err(|_| format!("bad SR_FAULT_SEED: {s:?}"))?,
            Err(_) => 0,
        };
        FaultPlan::parse(&spec, seed).map(Some)
    }
}

/// The runtime injector: shared by every execution path of a server,
/// keeping one hit counter per site and one seeded PRNG for probability
/// triggers. [`FaultInjector::hit`] is called at each site; with no rules
/// matching it costs one relaxed atomic increment.
#[derive(Debug)]
pub struct FaultInjector {
    rules: Vec<FaultRule>,
    hits: [AtomicU64; 3],
    fired: AtomicU64,
    rng: Mutex<u64>,
}

impl FaultInjector {
    /// Build an injector from a plan.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            rules: plan.rules,
            hits: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            fired: AtomicU64::new(0),
            // xorshift state must be non-zero.
            rng: Mutex::new(plan.seed | 1),
        }
    }

    /// Total faults fired so far (all kinds).
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Hit counts per site, in [`FaultSite::ALL`] order — lets tests
    /// assert a site was actually reached.
    pub fn hits(&self) -> Vec<(FaultSite, u64)> {
        FaultSite::ALL
            .iter()
            .map(|&s| (s, self.hits[s.index()].load(Ordering::Relaxed)))
            .collect()
    }

    fn next_unit(&self) -> f64 {
        let mut s = self.rng.lock().unwrap_or_else(|p| p.into_inner());
        // xorshift64* — deterministic, seed-stable across platforms.
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        (s.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Register a hit of `site`; fire any matching rule. May panic
    /// ([`FaultKind::Panic`]), sleep ([`FaultKind::Delay`]), or return a
    /// typed transient error ([`FaultKind::Transient`]).
    pub fn hit(&self, site: FaultSite) -> Result<(), EngineError> {
        let n = self.hits[site.index()].fetch_add(1, Ordering::Relaxed) + 1;
        for rule in &self.rules {
            if rule.site != site {
                continue;
            }
            let fire = match rule.trigger {
                FaultTrigger::Always => true,
                FaultTrigger::Nth(k) => n == k,
                FaultTrigger::Prob(p) => self.next_unit() < p,
            };
            if !fire {
                continue;
            }
            self.fired.fetch_add(1, Ordering::Relaxed);
            match rule.kind {
                FaultKind::Panic => panic!("injected fault: panic at {site} (hit {n})"),
                FaultKind::Delay(d) => std::thread::sleep(d),
                FaultKind::Transient => {
                    return Err(EngineError::Transient(format!(
                        "injected fault at {site} (hit {n})"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rule_variants() {
        assert_eq!(
            FaultRule::parse("panic@scan#2").unwrap(),
            FaultRule {
                site: FaultSite::Scan,
                kind: FaultKind::Panic,
                trigger: FaultTrigger::Nth(2),
            }
        );
        assert_eq!(
            FaultRule::parse("delay50@send").unwrap(),
            FaultRule {
                site: FaultSite::Send,
                kind: FaultKind::Delay(Duration::from_millis(50)),
                trigger: FaultTrigger::Always,
            }
        );
        assert_eq!(
            FaultRule::parse("transient@encode%0.25").unwrap(),
            FaultRule {
                site: FaultSite::Encode,
                kind: FaultKind::Transient,
                trigger: FaultTrigger::Prob(0.25),
            }
        );
        for bad in [
            "panic",
            "panic@disk",
            "zap@scan",
            "panic@scan#0",
            "delayx@scan",
            "panic@scan%2",
        ] {
            assert!(FaultRule::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let inj = FaultInjector::new(FaultPlan::parse("transient@scan#2", 0).unwrap());
        assert!(inj.hit(FaultSite::Scan).is_ok());
        assert!(matches!(
            inj.hit(FaultSite::Scan),
            Err(EngineError::Transient(_))
        ));
        assert!(inj.hit(FaultSite::Scan).is_ok());
        assert!(inj.hit(FaultSite::Encode).is_ok(), "other sites unaffected");
        assert_eq!(inj.fired(), 1);
        assert_eq!(inj.hits()[0], (FaultSite::Scan, 3));
    }

    #[test]
    fn prob_trigger_is_seed_deterministic() {
        let run = |seed| {
            let inj = FaultInjector::new(FaultPlan::parse("transient@send%0.5", seed).unwrap());
            (0..64)
                .map(|_| inj.hit(FaultSite::Send).is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same fault sequence");
        assert_ne!(run(7), run(8), "different seed, different sequence");
        let fired = run(7).iter().filter(|&&f| f).count();
        assert!((16..=48).contains(&fired), "p=0.5 fired {fired}/64");
    }

    #[test]
    #[should_panic(expected = "injected fault: panic at scan")]
    fn panic_rule_panics() {
        let inj = FaultInjector::new(FaultPlan::parse("panic@scan", 0).unwrap());
        let _ = inj.hit(FaultSite::Scan);
    }
}
