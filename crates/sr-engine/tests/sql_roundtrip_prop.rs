//! Property test: for randomly generated plans, printing to SQL, re-parsing
//! and re-binding yields a plan with the same output schema and the same
//! rows. This is the middle-ware contract — whatever the generator builds,
//! the string form shipped to the server means the same thing.

use std::sync::Arc;

use proptest::prelude::*;

use sr_data::{row, DataType, Database, Row, Schema, Table, Value};
use sr_engine::sql::{plan_sql, to_sql};
use sr_engine::{execute, CmpOp, Expr, JoinKind, Plan, Predicate};

fn db() -> Arc<Database> {
    let mut db = Database::new();
    let mut a = Table::new(
        "A",
        Schema::of(&[
            ("id", DataType::Int),
            ("g", DataType::Int),
            ("s", DataType::Str),
        ]),
    );
    for i in 0..20i64 {
        a.insert(row![i, i % 4, format!("a{}", i % 3)]).unwrap();
    }
    let mut b = Table::new(
        "B",
        Schema::of(&[
            ("id", DataType::Int),
            ("aid", DataType::Int),
            ("v", DataType::Float),
        ]),
    );
    for i in 0..30i64 {
        b.insert(Row::new(vec![
            Value::Int(i),
            Value::Int(i % 25),
            Value::Float(i as f64 / 4.0),
        ]))
        .unwrap();
    }
    db.add_table(a);
    db.add_table(b);
    Arc::new(db)
}

/// A generation recipe; aliases and output names are assigned during
/// conversion so they stay globally unique within one plan.
#[derive(Debug, Clone)]
enum Gen {
    ScanA,
    ScanB,
    FilterFirstIntGt(Box<Gen>, i64),
    ProjectFirstTwo(Box<Gen>),
    Join(Box<Gen>, Box<Gen>, bool),
    UnionFirstInt(Box<Gen>, Box<Gen>),
    SortAll(Box<Gen>),
    Distinct(Box<Gen>),
}

fn gen_strategy() -> impl Strategy<Value = Gen> {
    let leaf = prop_oneof![Just(Gen::ScanA), Just(Gen::ScanB)];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (inner.clone(), 0i64..20).prop_map(|(p, n)| Gen::FilterFirstIntGt(Box::new(p), n)),
            inner
                .clone()
                .prop_map(|p| Gen::ProjectFirstTwo(Box::new(p))),
            (inner.clone(), inner.clone(), any::<bool>()).prop_map(|(l, r, outer)| Gen::Join(
                Box::new(l),
                Box::new(r),
                outer
            )),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Gen::UnionFirstInt(Box::new(l), Box::new(r))),
            inner.clone().prop_map(|p| Gen::SortAll(Box::new(p))),
            inner.prop_map(|p| Gen::Distinct(Box::new(p))),
        ]
    })
}

struct Builder<'a> {
    db: &'a Database,
    counter: usize,
}

impl<'a> Builder<'a> {
    fn fresh(&mut self) -> usize {
        self.counter += 1;
        self.counter
    }

    fn build(&mut self, g: &Gen) -> Plan {
        match g {
            Gen::ScanA => Plan::scan("A", format!("t{}", self.fresh())),
            Gen::ScanB => Plan::scan("B", format!("t{}", self.fresh())),
            Gen::FilterFirstIntGt(inner, n) => {
                let p = self.build(inner);
                match self.first_int_col(&p) {
                    Some(col) => p.filter(vec![Predicate::new(
                        Expr::col(col),
                        CmpOp::Gt,
                        Expr::lit(*n),
                    )]),
                    None => p,
                }
            }
            Gen::ProjectFirstTwo(inner) => {
                let p = self.build(inner);
                let schema = p.schema(self.db).expect("schema");
                let n = self.fresh();
                let items: Vec<(String, Expr)> = schema
                    .names()
                    .take(2)
                    .enumerate()
                    .map(|(i, c)| (format!("p{n}_{i}"), Expr::col(c.to_string())))
                    .collect();
                p.project(items)
            }
            Gen::Join(l, r, outer) => {
                let lp = self.build(l);
                let rp = self.build(r);
                let (Some(lc), Some(rc)) = (self.first_int_col(&lp), self.first_int_col(&rp))
                else {
                    return lp;
                };
                let kind = if *outer {
                    JoinKind::LeftOuter
                } else {
                    JoinKind::Inner
                };
                lp.join(rp, kind, vec![(lc, rc)])
            }
            Gen::UnionFirstInt(l, r) => {
                let n = self.fresh();
                let mut branches = Vec::new();
                for g in [l, r] {
                    let p = self.build(g);
                    match self.first_int_col(&p) {
                        Some(c) => {
                            branches.push(p.project(vec![(format!("u{n}"), Expr::col(c))]));
                        }
                        None => return self.build(g),
                    }
                }
                Plan::OuterUnion { inputs: branches }
            }
            Gen::SortAll(inner) => {
                let p = self.build(inner);
                let keys: Vec<String> = p
                    .schema(self.db)
                    .expect("schema")
                    .names()
                    .map(str::to_string)
                    .collect();
                p.sort(keys)
            }
            Gen::Distinct(inner) => Plan::Distinct {
                input: Box::new(self.build(inner)),
            },
        }
    }

    fn first_int_col(&self, p: &Plan) -> Option<String> {
        let schema = p.schema(self.db).ok()?;
        schema
            .columns()
            .iter()
            .find(|c| c.dtype == DataType::Int)
            .map(|c| c.name.clone())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sql_roundtrip_preserves_semantics(g in gen_strategy()) {
        let db = db();
        let plan = Builder { db: &db, counter: 0 }.build(&g);
        // Some generated shapes are degenerate; they must still round-trip.
        let sql = to_sql(&plan, &db).expect("to_sql");
        let reparsed = plan_sql(&sql, &db)
            .unwrap_or_else(|e| panic!("bind failed ({e}) for: {sql}"));
        let mut direct = execute(&plan, &db).expect("direct");
        let mut via = execute(&reparsed, &db).expect("via sql");
        prop_assert_eq!(
            direct.schema.names().collect::<Vec<_>>(),
            via.schema.names().collect::<Vec<_>>(),
            "schema mismatch for: {}", sql
        );
        direct.rows.sort();
        via.rows.sort();
        prop_assert_eq!(direct.rows, via.rows, "row mismatch for: {}", sql);
    }

    #[test]
    fn predicate_pushdown_preserves_semantics(g in gen_strategy()) {
        let db = db();
        let plan = Builder { db: &db, counter: 0 }.build(&g);
        let optimized = sr_engine::push_filters(plan.clone(), &db).expect("pushdown");
        let mut direct = execute(&plan, &db).expect("direct");
        let mut opt = execute(&optimized, &db).expect("optimized");
        prop_assert_eq!(
            direct.schema.names().collect::<Vec<_>>(),
            opt.schema.names().collect::<Vec<_>>()
        );
        direct.rows.sort();
        opt.rows.sort();
        prop_assert_eq!(direct.rows, opt.rows);
    }

    #[test]
    fn estimator_never_panics_and_is_finite(g in gen_strategy()) {
        let db = db();
        let plan = Builder { db: &db, counter: 0 }.build(&g);
        let est = sr_engine::estimate(&plan, &db).expect("estimate");
        prop_assert!(est.cardinality.is_finite() && est.cardinality >= 0.0);
        prop_assert!(est.eval_cost.is_finite() && est.eval_cost >= 0.0);
        prop_assert!(est.data_size().is_finite() && est.data_size() >= 0.0);
    }
}
