//! Property tests for the vectorized execution path.
//!
//! Two contracts are enforced here:
//!
//! 1. **Round-trip**: any rows — random types, NULLs, NaNs, empty tables —
//!    pivoted into [`ColumnBatch`]es come back out identical.
//! 2. **Byte identity**: for randomly generated plans, the vectorized
//!    executor's wire encoding is byte-for-byte the tuple executor's. The
//!    column path is a pure execution-strategy change; any divergence in
//!    bytes (not just rows — bytes) is a bug.

use std::sync::Arc;

use proptest::prelude::*;

use sr_data::column::{batches_from_rows, ColumnBatch};
use sr_data::{row, Column, DataType, Database, Row, Schema, Table, Value};
use sr_engine::wire::{encode_batch, encode_rows};
use sr_engine::{execute, execute_vectorized, CmpOp, Expr, JoinKind, Plan, Predicate};

// ---------------------------------------------------------------------------
// Row → column → row round-trip
// ---------------------------------------------------------------------------

/// Deterministic cell generator: a tiny LCG over the proptest-chosen seed,
/// so the case is fully described by `(dtypes, nrows, seed)` and replays
/// exactly. Mixes in NULLs, NaN, -0.0 and empty/multi-byte strings — the
/// cells the validity bitmap and offsets layout must get right.
fn cell(dtype: DataType, state: &mut u64) -> Value {
    let mut next = || {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    };
    if next() % 4 == 0 {
        return Value::Null;
    }
    match dtype {
        DataType::Int => Value::Int(next() as i64 - (next() % 2) as i64 * i64::MAX),
        DataType::Float => match next() % 5 {
            0 => Value::Float(f64::NAN),
            1 => Value::Float(-0.0),
            2 => Value::Float(f64::INFINITY),
            _ => Value::Float(next() as f64 / 1e6 - 1e3),
        },
        DataType::Str => {
            let len = (next() % 5) as usize;
            let s: String = (0..len)
                .map(|_| ['a', 'é', '√', 'z', '~'][(next() % 5) as usize])
                .collect();
            Value::str(s)
        }
    }
}

fn schema_and_rows() -> impl Strategy<Value = (Vec<DataType>, usize, u64)> {
    (
        proptest::collection::vec(
            prop_oneof![
                Just(DataType::Int),
                Just(DataType::Float),
                Just(DataType::Str)
            ],
            1..5,
        ),
        0usize..40,
        any::<u64>(),
    )
}

fn schema_of(dtypes: &[DataType]) -> Schema {
    Schema::new(
        dtypes
            .iter()
            .enumerate()
            .map(|(i, &t)| Column::nullable(format!("c{i}"), t))
            .collect(),
    )
    .expect("schema")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rows_round_trip_through_columns((dtypes, nrows, seed) in schema_and_rows()) {
        let schema = schema_of(&dtypes);
        let mut state = seed;
        let rows: Vec<Row> = (0..nrows)
            .map(|_| Row::new(dtypes.iter().map(|&t| cell(t, &mut state)).collect()))
            .collect();
        // One batch holding everything…
        let batch = ColumnBatch::from_rows(&schema, &rows).expect("from_rows");
        prop_assert_eq!(batch.len(), rows.len());
        prop_assert_eq!(batch.to_rows(), rows.clone());
        // …and split into small batches, whose concatenation is the input.
        let parts = batches_from_rows(&schema, &rows, 7).expect("batches");
        let back: Vec<Row> = parts.iter().flat_map(ColumnBatch::to_rows).collect();
        prop_assert_eq!(back, rows.clone());
        // The wire encoding survives the pivot too.
        let mut wire = Vec::new();
        for p in &parts {
            wire.extend_from_slice(&encode_batch(p));
        }
        prop_assert_eq!(wire.as_slice(), encode_rows(&rows).as_ref());
    }
}

#[test]
fn empty_table_round_trips() {
    let schema = schema_of(&[DataType::Int, DataType::Str]);
    let batch = ColumnBatch::from_rows(&schema, &[]).expect("from_rows");
    assert!(batch.is_empty());
    assert!(batch.to_rows().is_empty());
    assert!(batches_from_rows(&schema, &[], 4)
        .expect("batches")
        .is_empty());
}

// ---------------------------------------------------------------------------
// Random plans: vectorized == tuple, down to the wire bytes
// ---------------------------------------------------------------------------

fn db() -> Arc<Database> {
    let mut db = Database::new();
    let mut a = Table::new(
        "A",
        Schema::of(&[
            ("id", DataType::Int),
            ("g", DataType::Int),
            ("s", DataType::Str),
        ]),
    );
    for i in 0..20i64 {
        a.insert(row![i, i % 4, format!("a{}", i % 3)]).unwrap();
    }
    let mut b = Table::new(
        "B",
        Schema::of(&[
            ("id", DataType::Int),
            ("aid", DataType::Int),
            ("v", DataType::Float),
        ]),
    );
    for i in 0..30i64 {
        b.insert(Row::new(vec![
            Value::Int(i),
            Value::Int(i % 25),
            Value::Float(i as f64 / 4.0),
        ]))
        .unwrap();
    }
    db.add_table(a);
    db.add_table(b);
    Arc::new(db)
}

/// A generation recipe; aliases and output names are assigned during
/// conversion so they stay globally unique within one plan. (Same recipe
/// the SQL round-trip proptest uses.)
#[derive(Debug, Clone)]
enum Gen {
    ScanA,
    ScanB,
    FilterFirstIntGt(Box<Gen>, i64),
    ProjectFirstTwo(Box<Gen>),
    Join(Box<Gen>, Box<Gen>, bool),
    UnionFirstInt(Box<Gen>, Box<Gen>),
    SortAll(Box<Gen>),
    Distinct(Box<Gen>),
}

fn gen_strategy() -> impl Strategy<Value = Gen> {
    let leaf = prop_oneof![Just(Gen::ScanA), Just(Gen::ScanB)];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (inner.clone(), 0i64..20).prop_map(|(p, n)| Gen::FilterFirstIntGt(Box::new(p), n)),
            inner
                .clone()
                .prop_map(|p| Gen::ProjectFirstTwo(Box::new(p))),
            (inner.clone(), inner.clone(), any::<bool>()).prop_map(|(l, r, outer)| Gen::Join(
                Box::new(l),
                Box::new(r),
                outer
            )),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Gen::UnionFirstInt(Box::new(l), Box::new(r))),
            inner.clone().prop_map(|p| Gen::SortAll(Box::new(p))),
            inner.prop_map(|p| Gen::Distinct(Box::new(p))),
        ]
    })
}

struct Builder<'a> {
    db: &'a Database,
    counter: usize,
}

impl<'a> Builder<'a> {
    fn fresh(&mut self) -> usize {
        self.counter += 1;
        self.counter
    }

    fn build(&mut self, g: &Gen) -> Plan {
        match g {
            Gen::ScanA => Plan::scan("A", format!("t{}", self.fresh())),
            Gen::ScanB => Plan::scan("B", format!("t{}", self.fresh())),
            Gen::FilterFirstIntGt(inner, n) => {
                let p = self.build(inner);
                match self.first_int_col(&p) {
                    Some(col) => p.filter(vec![Predicate::new(
                        Expr::col(col),
                        CmpOp::Gt,
                        Expr::lit(*n),
                    )]),
                    None => p,
                }
            }
            Gen::ProjectFirstTwo(inner) => {
                let p = self.build(inner);
                let schema = p.schema(self.db).expect("schema");
                let n = self.fresh();
                let items: Vec<(String, Expr)> = schema
                    .names()
                    .take(2)
                    .enumerate()
                    .map(|(i, c)| (format!("p{n}_{i}"), Expr::col(c.to_string())))
                    .collect();
                p.project(items)
            }
            Gen::Join(l, r, outer) => {
                let lp = self.build(l);
                let rp = self.build(r);
                let (Some(lc), Some(rc)) = (self.first_int_col(&lp), self.first_int_col(&rp))
                else {
                    return lp;
                };
                let kind = if *outer {
                    JoinKind::LeftOuter
                } else {
                    JoinKind::Inner
                };
                lp.join(rp, kind, vec![(lc, rc)])
            }
            Gen::UnionFirstInt(l, r) => {
                let n = self.fresh();
                let mut branches = Vec::new();
                for g in [l, r] {
                    let p = self.build(g);
                    match self.first_int_col(&p) {
                        Some(c) => {
                            branches.push(p.project(vec![(format!("u{n}"), Expr::col(c))]));
                        }
                        None => return self.build(g),
                    }
                }
                Plan::OuterUnion { inputs: branches }
            }
            Gen::SortAll(inner) => {
                let p = self.build(inner);
                let keys: Vec<String> = p
                    .schema(self.db)
                    .expect("schema")
                    .names()
                    .map(str::to_string)
                    .collect();
                p.sort(keys)
            }
            Gen::Distinct(inner) => Plan::Distinct {
                input: Box::new(self.build(inner)),
            },
        }
    }

    fn first_int_col(&self, p: &Plan) -> Option<String> {
        let schema = p.schema(self.db).ok()?;
        schema
            .columns()
            .iter()
            .find(|c| c.dtype == DataType::Int)
            .map(|c| c.name.clone())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn vectorized_matches_tuple_bytes_for_random_plans(g in gen_strategy()) {
        let db = db();
        let plan = Builder { db: &db, counter: 0 }.build(&g);
        let tuple = execute(&plan, &db).expect("tuple path");
        let vector = execute_vectorized(&plan, &db).expect("vectorized path");
        prop_assert_eq!(
            tuple.schema.names().collect::<Vec<_>>(),
            vector.schema.names().collect::<Vec<_>>()
        );
        prop_assert_eq!(tuple.rows.len(), vector.row_count());
        let want = encode_rows(&tuple.rows);
        let mut got = Vec::with_capacity(want.len());
        for b in &vector.batches {
            got.extend_from_slice(&encode_batch(b));
        }
        prop_assert_eq!(
            got.as_slice(),
            want.as_ref(),
            "wire bytes diverge between executors"
        );
    }
}
