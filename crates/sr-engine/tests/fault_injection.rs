//! Fault-injection matrix: every injected fault must surface as a typed
//! [`EngineError`] on every execution path — never a hang, a process
//! abort, or a silently short result.
//!
//! The matrix crosses fault sites (scan / encode / send) and kinds
//! (panic / transient / delay) with the three execution paths: fully
//! buffered (`execute_sql`), streaming on a worker thread, and the
//! single-CPU inline streaming fallback. Faults are deterministic
//! (seeded, hit-counted), so each cell is reproducible.

use std::sync::Arc;
use std::time::Duration;

use sr_data::{row, DataType, Database, Row, Schema, Table};
use sr_engine::{EngineError, FaultPlan, Server};

const SQL: &str = "SELECT i.id AS id, i.label AS label FROM Item i ORDER BY id";

/// Silence the default panic hook for *injected* panics only: they are the
/// point of these tests and would otherwise spray backtraces over the
/// output. Every other panic (i.e. a genuine test failure) still prints.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !msg.starts_with("injected fault") {
                prev(info);
            }
        }));
    });
}

fn server() -> Server {
    let mut db = Database::new();
    let mut t = Table::new(
        "Item",
        Schema::of(&[("id", DataType::Int), ("label", DataType::Str)]),
    );
    for i in 0..50i64 {
        t.insert(row![i, format!("item-{i}")]).unwrap();
    }
    db.add_table(t);
    Server::new(Arc::new(db))
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Buffered,
    Worker,
    Inline,
}

const MODES: [Mode; 3] = [Mode::Buffered, Mode::Worker, Mode::Inline];

fn configure(s: Server, mode: Mode) -> Server {
    match mode {
        Mode::Buffered => s,
        Mode::Worker => s.with_stream_workers(true),
        Mode::Inline => s.with_stream_workers(false),
    }
}

fn run(s: &Server, mode: Mode) -> Result<Vec<Row>, EngineError> {
    match mode {
        Mode::Buffered => s.execute_sql(SQL)?.collect_rows(),
        Mode::Worker | Mode::Inline => s.execute_sql_streaming(SQL)?.collect_rows(),
    }
}

#[test]
fn panic_matrix_surfaces_typed_internal_errors() {
    quiet_injected_panics();
    for mode in MODES {
        for site in ["scan", "encode", "send"] {
            let spec = format!("panic@{site}");
            let s = configure(
                server().with_faults(FaultPlan::parse(&spec, 1).unwrap()),
                mode,
            );
            let result = run(&s, mode);
            if mode == Mode::Buffered && site == "send" {
                // The buffered path has no send site — the fault must not
                // fire and the query must succeed untouched.
                assert_eq!(result.unwrap().len(), 50, "{mode:?}/{site}");
                assert_eq!(s.fault_injector().unwrap().fired(), 0);
                assert_eq!(s.metrics().snapshot().counter("server.panics"), 0);
                continue;
            }
            match result {
                Err(EngineError::Internal(m)) => {
                    assert!(m.contains("injected fault"), "{mode:?}/{site}: {m}")
                }
                other => panic!("{mode:?}/{site}: expected Internal error, got {other:?}"),
            }
            assert_eq!(
                s.metrics().snapshot().counter("server.panics"),
                1,
                "{mode:?}/{site}"
            );
        }
    }
}

#[test]
fn transient_faults_retry_to_success_in_every_mode() {
    for mode in MODES {
        let s = configure(
            server().with_faults(FaultPlan::parse("transient@scan#1", 1).unwrap()),
            mode,
        );
        let rows = run(&s, mode).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        assert_eq!(rows.len(), 50, "{mode:?}");
        assert_eq!(
            s.metrics().snapshot().counter("server.retries"),
            1,
            "{mode:?}"
        );
    }
}

#[test]
fn exhausted_transient_retries_surface_typed_error() {
    for mode in MODES {
        let s = configure(
            server()
                .with_transient_retries(1)
                .with_faults(FaultPlan::parse("transient@scan", 1).unwrap()),
            mode,
        );
        match run(&s, mode) {
            Err(EngineError::Transient(m)) => assert!(m.contains("injected fault"), "{m}"),
            other => panic!("{mode:?}: expected Transient error, got {other:?}"),
        }
        assert_eq!(
            s.metrics().snapshot().counter("server.retries"),
            1,
            "{mode:?}"
        );
    }
}

#[test]
fn transient_at_stream_sites_surfaces_without_truncation() {
    // Encode/send transients happen after execution, outside the retry
    // wrapper: they must surface as the stream's typed terminal error, not
    // as a clean-looking short document.
    for mode in [Mode::Worker, Mode::Inline, Mode::Buffered] {
        for site in ["encode", "send"] {
            if mode == Mode::Buffered && site == "send" {
                continue; // no send site on the buffered path
            }
            let spec = format!("transient@{site}");
            let s = configure(
                server().with_faults(FaultPlan::parse(&spec, 1).unwrap()),
                mode,
            );
            match run(&s, mode) {
                Err(EngineError::Transient(m)) => {
                    assert!(m.contains("injected fault"), "{mode:?}/{site}: {m}")
                }
                other => panic!("{mode:?}/{site}: expected Transient, got {other:?}"),
            }
        }
    }
}

#[test]
fn delayed_execution_trips_the_deadline_cooperatively() {
    // A 30ms injected stall against a 5ms budget: the worker must stop at
    // its next chunk-boundary check with a Timeout, not run to completion
    // and report post-hoc.
    for mode in MODES {
        let s = configure(
            server()
                .with_timeout(Duration::from_millis(5))
                .with_faults(FaultPlan::parse("delay30@scan", 1).unwrap()),
            mode,
        );
        match run(&s, mode) {
            Err(EngineError::Timeout {
                elapsed_ms,
                limit_ms,
            }) => {
                assert!(elapsed_ms >= limit_ms, "{mode:?}")
            }
            other => panic!("{mode:?}: expected Timeout, got {other:?}"),
        }
        let snap = s.metrics().snapshot();
        assert_eq!(snap.counter("server.timeouts"), 1, "{mode:?}");
        assert_eq!(snap.counter("server.cancelled"), 1, "{mode:?}");
    }
}

#[test]
fn panicking_workers_do_not_exhaust_the_gate() {
    quiet_injected_panics();
    // One panicking query per gate permit, plus slack: if a panic leaked
    // its permit, the clean query at the end would block forever on the
    // admission gate (and the test harness would flag the hang).
    let n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        + 2;
    let rules = (1..=n)
        .map(|k| format!("panic@scan#{k}"))
        .collect::<Vec<_>>()
        .join(",");
    let s = server()
        .with_stream_workers(true)
        .with_faults(FaultPlan::parse(&rules, 1).unwrap());
    for i in 0..n {
        match run(&s, Mode::Worker) {
            Err(EngineError::Internal(_)) => {}
            other => panic!("query {i}: expected Internal error, got {other:?}"),
        }
    }
    assert_eq!(s.metrics().snapshot().counter("server.panics"), n as u64);
    // Every permit must be back: a clean query still gets through.
    let rows = run(&s, Mode::Worker).unwrap();
    assert_eq!(rows.len(), 50);
}

#[test]
fn unfired_faults_leave_results_identical() {
    let want = server().execute_sql(SQL).unwrap().collect_rows().unwrap();
    for mode in MODES {
        let s = configure(
            server().with_faults(
                FaultPlan::parse("panic@scan#999,transient@encode#999,delay50@send#999", 7)
                    .unwrap(),
            ),
            mode,
        );
        let rows = run(&s, mode).unwrap();
        assert_eq!(rows, want, "{mode:?}");
        assert_eq!(s.fault_injector().unwrap().fired(), 0, "{mode:?}");
        let snap = s.metrics().snapshot();
        for c in ["server.panics", "server.retries", "server.cancelled"] {
            assert_eq!(snap.counter(c), 0, "{mode:?}/{c}");
        }
    }
}
