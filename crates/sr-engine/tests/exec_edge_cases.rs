//! Executor edge cases: empty inputs, degenerate joins, sort stability,
//! and CTE corner cases.

use std::sync::Arc;

use sr_data::{row, DataType, Database, Row, Schema, Table, Value};
use sr_engine::{execute, CmpOp, Expr, JoinKind, Plan, Predicate, Server};

fn db() -> Database {
    let mut db = Database::new();
    let mut a = Table::new(
        "A",
        Schema::of(&[("id", DataType::Int), ("g", DataType::Int)]),
    );
    a.insert_all([row![1i64, 9i64], row![2i64, 9i64], row![3i64, 7i64]])
        .unwrap();
    db.add_table(a);
    db.add_table(Table::new(
        "Empty",
        Schema::of(&[("id", DataType::Int), ("x", DataType::Str)]),
    ));
    db
}

#[test]
fn scans_of_empty_tables() {
    let db = db();
    let rs = execute(&Plan::scan("Empty", "e"), &db).unwrap();
    assert_eq!(rs.len(), 0);
    assert_eq!(rs.schema.arity(), 2);
}

#[test]
fn inner_join_with_empty_side_is_empty() {
    let db = db();
    for (l, r) in [("A", "Empty"), ("Empty", "A")] {
        let p = Plan::scan(l, "l").join(
            Plan::scan(r, "r"),
            JoinKind::Inner,
            vec![("l_id".into(), "r_id".into())],
        );
        assert_eq!(execute(&p, &db).unwrap().len(), 0, "{l} ⋈ {r}");
    }
}

#[test]
fn left_outer_join_with_empty_right_pads_everything() {
    let db = db();
    let p = Plan::scan("A", "a").join(
        Plan::scan("Empty", "e"),
        JoinKind::LeftOuter,
        vec![("a_id".into(), "e_id".into())],
    );
    let rs = execute(&p, &db).unwrap();
    assert_eq!(rs.len(), 3);
    assert!(rs
        .rows
        .iter()
        .all(|r| r.get(2).is_null() && r.get(3).is_null()));
}

#[test]
fn cross_join_left_outer_with_empty_right() {
    let db = db();
    let p = Plan::scan("A", "a").join(Plan::scan("Empty", "e"), JoinKind::LeftOuter, vec![]);
    let rs = execute(&p, &db).unwrap();
    assert_eq!(rs.len(), 3, "every left row padded once");
}

#[test]
fn left_outer_join_against_empty_build_side() {
    // The hash join builds on the right input. A right side whose join keys
    // are all NULL yields an *empty build table* even though the input has
    // rows — every left row must still be padded exactly once.
    let mut db = db();
    let mut n = Table::new(
        "NullKeys",
        Schema::new(vec![
            sr_data::Column::nullable("id", DataType::Int),
            sr_data::Column::nullable("x", DataType::Str),
        ])
        .unwrap(),
    );
    n.insert(Row::new(vec![Value::Null, Value::str("a")]))
        .unwrap();
    n.insert(Row::new(vec![Value::Null, Value::str("b")]))
        .unwrap();
    db.add_table(n);
    let p = Plan::scan("A", "a").join(
        Plan::scan("NullKeys", "n"),
        JoinKind::LeftOuter,
        vec![("a_id".into(), "n_id".into())],
    );
    let rs = execute(&p, &db).unwrap();
    assert_eq!(rs.len(), 3, "one padded row per left row");
    assert!(rs
        .rows
        .iter()
        .all(|r| r.get(2).is_null() && r.get(3).is_null()));
    // Inner join over the same empty build side matches nothing.
    let p = Plan::scan("A", "a").join(
        Plan::scan("NullKeys", "n"),
        JoinKind::Inner,
        vec![("a_id".into(), "n_id".into())],
    );
    assert!(execute(&p, &db).unwrap().is_empty());
}

#[test]
fn null_join_keys_never_match_mixed_with_values() {
    // NULL = NULL is not true in SQL: only the non-NULL key pairs join,
    // whichever side the NULLs are on.
    let mut db = Database::new();
    for name in ["L", "R"] {
        let mut t = Table::new(
            name,
            Schema::new(vec![
                sr_data::Column::nullable("k", DataType::Int),
                sr_data::Column::nullable("tag", DataType::Str),
            ])
            .unwrap(),
        );
        t.insert(Row::new(vec![Value::Null, Value::str("null")]))
            .unwrap();
        t.insert(row![1i64, format!("{name}-1")]).unwrap();
        t.insert(row![2i64, format!("{name}-2")]).unwrap();
        db.add_table(t);
    }
    let inner = Plan::scan("L", "l").join(
        Plan::scan("R", "r"),
        JoinKind::Inner,
        vec![("l_k".into(), "r_k".into())],
    );
    let rs = execute(&inner, &db).unwrap();
    assert_eq!(rs.len(), 2, "only k=1 and k=2 pair up");
    assert!(rs.rows.iter().all(|r| !r.get(0).is_null()));
    let outer = Plan::scan("L", "l").join(
        Plan::scan("R", "r"),
        JoinKind::LeftOuter,
        vec![("l_k".into(), "r_k".into())],
    );
    let rs = execute(&outer, &db).unwrap();
    assert_eq!(rs.len(), 3, "NULL-keyed left row padded, not matched");
    let padded: Vec<_> = rs.rows.iter().filter(|r| r.get(2).is_null()).collect();
    assert_eq!(padded.len(), 1);
    assert!(
        padded[0].get(0).is_null(),
        "the padded row is the NULL-keyed one"
    );
}

#[test]
fn timeout_mid_plan_leaves_no_partial_stream() {
    // A query that trips the timeout must surface as an error — never as a
    // truncated TupleStream the tagger could silently consume.
    let server = Server::new(Arc::new(db())).with_timeout(std::time::Duration::ZERO);
    match server.execute_sql("SELECT a.id AS id FROM A a ORDER BY id") {
        Err(sr_engine::EngineError::Timeout { .. }) => {}
        other => panic!("expected timeout, got {other:?}"),
    }
    // Multi-query (mid-plan) execution: every stream reports the timeout;
    // none comes back partially decoded.
    let queries = vec![
        "SELECT a.id AS id FROM A a ORDER BY id".to_string(),
        "SELECT a.g AS g FROM A a ORDER BY g".to_string(),
    ];
    let results = server.execute_all_parallel(&queries);
    assert_eq!(results.len(), 2);
    for r in &results {
        assert!(
            matches!(r, Err(sr_engine::EngineError::Timeout { .. })),
            "expected timeout, got {r:?}"
        );
    }
    // The registry counted each trip.
    assert_eq!(server.metrics().snapshot().counter("server.timeouts"), 3);
}

#[test]
fn sort_is_stable() {
    // Two rows with equal sort key keep their input order.
    let mut db = Database::new();
    let mut t = Table::new(
        "T",
        Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]),
    );
    t.insert_all([
        row![1i64, "first"],
        row![2i64, "other"],
        row![1i64, "second"],
    ])
    .unwrap();
    db.add_table(t);
    let p = Plan::scan("T", "t").sort(vec!["t_k".into()]);
    let rs = execute(&p, &db).unwrap();
    assert_eq!(rs.rows[0].get(1), &Value::str("first"));
    assert_eq!(rs.rows[1].get(1), &Value::str("second"));
    assert_eq!(rs.rows[2].get(1), &Value::str("other"));
}

#[test]
fn outer_union_of_empty_branches() {
    let db = db();
    let a = Plan::scan("Empty", "e1").project(vec![("k".into(), Expr::col("e1_id"))]);
    let b = Plan::scan("Empty", "e2").project(vec![("k".into(), Expr::col("e2_id"))]);
    let u = Plan::OuterUnion { inputs: vec![a, b] };
    assert_eq!(execute(&u, &db).unwrap().len(), 0);
}

#[test]
fn filter_that_matches_nothing() {
    let db = db();
    let p = Plan::scan("A", "a").filter(vec![Predicate::new(
        Expr::col("a_id"),
        CmpOp::Gt,
        Expr::lit(100i64),
    )]);
    let rs = execute(&p, &db).unwrap();
    assert!(rs.is_empty());
    // Downstream operators cope with the empty input.
    let sorted = Plan::scan("A", "a")
        .filter(vec![Predicate::new(
            Expr::col("a_id"),
            CmpOp::Gt,
            Expr::lit(100i64),
        )])
        .sort(vec!["a_id".into()]);
    assert!(execute(&sorted, &db).unwrap().is_empty());
}

#[test]
fn distinct_of_constant_rows() {
    let db = db();
    let p = Plan::Distinct {
        input: Box::new(Plan::scan("A", "a").project(vec![("one".into(), Expr::lit(1i64))])),
    };
    assert_eq!(execute(&p, &db).unwrap().len(), 1);
}

#[test]
fn cte_referenced_twice_returns_same_rows() {
    let db = db();
    let def = Plan::scan("A", "a").project(vec![
        ("id".into(), Expr::col("a_id")),
        ("g".into(), Expr::col("a_g")),
    ]);
    let schema = def.schema(&db).unwrap();
    let body = Plan::CteScan {
        cte: "c".into(),
        alias: "x".into(),
        schema: schema.clone(),
    }
    .join(
        Plan::CteScan {
            cte: "c".into(),
            alias: "y".into(),
            schema: schema.clone(),
        },
        JoinKind::Inner,
        vec![("x_id".into(), "y_id".into())],
    );
    let with = Plan::With {
        ctes: vec![("c".into(), def)],
        body: Box::new(body),
    };
    let rs = execute(&with, &db).unwrap();
    assert_eq!(rs.len(), 3, "self-join on the key");
}

#[test]
fn cte_scan_outside_with_errors() {
    let db = db();
    let orphan = Plan::CteScan {
        cte: "nope".into(),
        alias: "x".into(),
        schema: Schema::of(&[("id", DataType::Int)]),
    };
    assert!(execute(&orphan, &db).is_err());
}

#[test]
fn empty_cte_definition() {
    let db = db();
    let def = Plan::scan("Empty", "e");
    let schema = def.schema(&db).unwrap();
    let with = Plan::With {
        ctes: vec![("c".into(), def)],
        body: Box::new(Plan::CteScan {
            cte: "c".into(),
            alias: "x".into(),
            schema,
        }),
    };
    assert!(execute(&with, &db).unwrap().is_empty());
}

#[test]
fn server_rejects_oversized_nonsense_gracefully() {
    let server = Server::new(Arc::new(db()));
    // Deep nesting of parens should error, not stack-overflow on this size.
    let mut q = String::from("SELECT a.id AS id FROM A a WHERE a.id = ");
    q.push_str(&"1".repeat(18));
    assert!(server.execute_sql(&q).is_ok(), "long literal parses");
    assert!(server.execute_sql("SELECT").is_err());
    assert!(server.execute_sql("").is_err());
}

#[test]
fn rows_share_storage_cheaply() {
    // Cloning a Row must not clone the cell data (Arc-backed).
    let r = Row::new(vec![Value::str("payload"), Value::Int(1)]);
    let r2 = r.clone();
    assert_eq!(r, r2);
    if let (Value::Str(a), Value::Str(b)) = (r.get(0), r2.get(0)) {
        assert!(
            std::sync::Arc::ptr_eq(a, b),
            "string payload must be shared"
        );
    } else {
        panic!("expected strings");
    }
}
