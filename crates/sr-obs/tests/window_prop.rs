//! Property tests for windowed aggregation: merging histogram snapshots is
//! associative and order-insensitive, so a window assembled slot-by-slot is
//! identical to one assembled from any regrouping of the same slots.

use proptest::prelude::*;
use sr_obs::{Histogram, HistogramSnapshot, WindowedHistogram};
use std::time::Duration;

fn snap_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

fn merged(parts: &[&HistogramSnapshot]) -> HistogramSnapshot {
    let mut acc = snap_of(&[]);
    for p in parts {
        acc.merge(p);
    }
    acc
}

fn assert_snap_eq(a: &HistogramSnapshot, b: &HistogramSnapshot) {
    assert_eq!(a.count, b.count, "count");
    assert_eq!(a.sum, b.sum, "sum");
    assert_eq!(a.min, b.min, "min");
    assert_eq!(a.max, b.max, "max");
    assert_eq!(a.buckets, b.buckets, "buckets");
}

proptest! {
    /// merge(merge(a, b), c) == merge(a, merge(b, c)) on every field.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..40),
        b in proptest::collection::vec(any::<u64>(), 0..40),
        c in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        let (sa, sb, sc) = (snap_of(&a), snap_of(&b), snap_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        assert_snap_eq(&left, &right);
    }

    /// Merging in any order equals recording everything into one histogram.
    #[test]
    fn merge_is_order_insensitive_and_lossless(
        a in proptest::collection::vec(any::<u64>(), 0..40),
        b in proptest::collection::vec(any::<u64>(), 0..40),
        c in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        let (sa, sb, sc) = (snap_of(&a), snap_of(&b), snap_of(&c));
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let direct = snap_of(&all);

        assert_snap_eq(&merged(&[&sa, &sb, &sc]), &direct);
        assert_snap_eq(&merged(&[&sc, &sa, &sb]), &direct);
        assert_snap_eq(&merged(&[&sb, &sc, &sa]), &direct);
    }

    /// A window over the whole ring equals a direct histogram of the same
    /// values, regardless of which second each value landed in.
    #[test]
    fn full_window_equals_direct_histogram(
        values in proptest::collection::vec((any::<u64>(), 0u64..50), 0..60),
    ) {
        let w = WindowedHistogram::new();
        let mut max_s = 0u64;
        for &(v, s) in &values {
            w.record_at(v, Duration::from_secs(s) + Duration::from_millis(100));
            max_s = max_s.max(s);
        }
        let now = Duration::from_secs(max_s) + Duration::from_millis(200);
        // Ring spans 64 slots and every value landed within the last 50 s,
        // so a 60 s window sees all of them.
        let win = w.window_at(60, now);
        let direct = snap_of(&values.iter().map(|&(v, _)| v).collect::<Vec<_>>());
        assert_snap_eq(&win.hist, &direct);
    }
}
