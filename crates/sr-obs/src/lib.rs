#![warn(missing_docs)]
//! # sr-obs
//!
//! Lightweight, zero-dependency metrics and tracing for the silkroute
//! pipeline.
//!
//! The paper's central argument is a *decomposition of middle-ware time*:
//! server query time vs. bind-and-transfer vs. tagging (§4, Figs. 13–15).
//! This crate provides the instruments that make that decomposition visible
//! in every layer:
//!
//! * [`Counter`] — monotone atomic counters (rows per operator, oracle
//!   round-trips, queries executed).
//! * [`Histogram`] — fixed base-2 log-scale buckets for latencies and
//!   sizes; lock-free recording.
//! * [`Spans`] — hierarchical timed spans for single-threaded driver code
//!   (`materialize` → `plan` → `execute` → `tag`), aggregated by path.
//! * [`MetricsRegistry`] — a named registry of counters and histograms
//!   shared across threads; [`MetricsRegistry::snapshot`] produces an
//!   immutable [`Snapshot`] that merges and renders to JSON without any
//!   serde dependency.
//!
//! ```
//! use sr_obs::MetricsRegistry;
//! let reg = MetricsRegistry::new();
//! reg.counter("server.queries").inc();
//! reg.histogram("server.execute_ns").record(1_500);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("server.queries"), 1);
//! assert!(snap.to_json().contains("\"server.queries\":1"));
//! ```

pub mod json;
pub mod metrics;
pub mod span;
pub mod trace;
pub mod window;

pub use json::Json;
pub use metrics::{Counter, Histogram, HistogramSnapshot, MetricsRegistry, Snapshot};
pub use span::{SpanGuard, SpanStat, Spans};
pub use trace::{TraceEvent, TracePhase, TraceSpan, Tracer};
pub use window::{WindowStats, WindowedCounter, WindowedHistogram};
