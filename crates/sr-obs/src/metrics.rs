//! Counters, log-scale histograms, the shared registry, and snapshots.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::json::Json;

/// A monotone atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value — gauge-style, for occupancy readings such as
    /// cache byte totals where the current level matters, not the sum.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of base-2 log buckets: bucket `i` counts values whose bit length
/// is `i`, i.e. values in `[2^(i-1), 2^i)`; bucket 0 counts zeros.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A lock-free histogram with fixed base-2 log-scale buckets.
///
/// Designed for nanosecond latencies and byte sizes: 65 buckets cover the
/// entire `u64` range with ≤ 2× relative bucket width and recording is a
/// single atomic add.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a value: its bit length (0 for 0).
fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Immutable histogram state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Per-bucket counts, index = bit length of the value.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive) of bucket `i`.
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Approximate quantile (`0.0 ..= 1.0`) from the log-scale buckets:
    /// the rank's bucket is found by cumulative count, then the value is
    /// interpolated linearly inside the bucket's `[2^(i-1), 2^i)` range
    /// and clamped to the observed min/max. Base-2 buckets bound the
    /// relative error at 2× — the quantile-bucket tolerance the STATS
    /// agreement checks rely on.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n > target {
                let lower = if i == 0 { 0 } else { Self::bucket_bound(i - 1) };
                let upper = Self::bucket_bound(i);
                let frac = (target - seen) as f64 / n as f64;
                let v = lower as f64 + frac * (upper - lower) as f64;
                return (v as u64).clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Merge another snapshot into this one. Sums wrap on overflow — the
    /// same semantic as the recording side's atomic `fetch_add`, and what
    /// keeps merging associative for arbitrary inputs.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        if other.count > 0 {
            self.min = if self.count == other.count {
                other.min
            } else {
                self.min.min(other.min)
            };
            self.max = self.max.max(other.max);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
    }

    /// JSON form: count/sum/min/max/mean plus non-empty buckets as
    /// `{"le": upper_bound, "n": count}` pairs.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| {
                Json::obj(vec![
                    ("le", Json::UInt(Self::bucket_bound(i))),
                    ("n", Json::UInt(*n)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("count", Json::UInt(self.count)),
            ("sum", Json::UInt(self.sum)),
            ("min", Json::UInt(self.min)),
            ("max", Json::UInt(self.max)),
            ("mean", Json::Float(self.mean())),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

/// A named registry of counters and histograms, shareable across threads.
///
/// Instruments are created on first use and live for the registry's
/// lifetime; recording never takes the registry lock (instruments are
/// handed out as `Arc`s).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    windowed_histograms: Mutex<BTreeMap<String, Arc<crate::window::WindowedHistogram>>>,
    windowed_counters: Mutex<BTreeMap<String, Arc<crate::window::WindowedCounter>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter registry lock");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram registry lock");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Get or create the rolling-window histogram `name`. Windowed
    /// instruments live beside the cumulative ones under their own
    /// namespace; a snapshot of the cumulative registry does not include
    /// them (see [`MetricsRegistry::windows_json`]).
    pub fn windowed_histogram(&self, name: &str) -> Arc<crate::window::WindowedHistogram> {
        let mut map = self
            .windowed_histograms
            .lock()
            .expect("windowed histogram registry lock");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(crate::window::WindowedHistogram::new())),
        )
    }

    /// Get or create the rolling-window counter `name`.
    pub fn windowed_counter(&self, name: &str) -> Arc<crate::window::WindowedCounter> {
        let mut map = self
            .windowed_counters
            .lock()
            .expect("windowed counter registry lock");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(crate::window::WindowedCounter::new())),
        )
    }

    /// The rolling 1 s / 10 s / 60 s views of every windowed instrument as
    /// one JSON object: `{"histograms": {name: {"1s": {...}, ...}},
    /// "counters": {...}}`.
    pub fn windows_json(&self) -> Json {
        let histograms = Json::Obj(
            self.windowed_histograms
                .lock()
                .expect("windowed histogram registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        let counters = Json::Obj(
            self.windowed_counters
                .lock()
                .expect("windowed counter registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        Json::obj(vec![("histograms", histograms), ("counters", counters)])
    }

    /// Immutable snapshot of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }
}

/// An immutable, mergeable view of a registry at a point in time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// A counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram's state, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Merge another snapshot into this one: counters add, histograms
    /// merge bucket-wise (e.g. combining per-worker registries).
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(h) => h.merge(v),
                None => {
                    self.histograms.insert(k.clone(), v.clone());
                }
            }
        }
    }

    /// JSON form: `{"counters": {...}, "histograms": {...}}`.
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("counters", Json::from_counter_map(&self.counters)),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Compact JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_base2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let h = Histogram::new();
        for v in [3, 0, 1024, 7] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 3 + 1024 + 7);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1024);
        assert_eq!(s.buckets[0], 1, "zero bucket");
        assert_eq!(s.buckets[2], 1, "3 → bucket 2");
        assert_eq!(s.buckets[3], 1, "7 → bucket 3");
        assert_eq!(s.buckets[11], 1, "1024 → bucket 11");
        assert!((s.mean() - (1034.0 / 4.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_min_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.min, 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn registry_instruments_are_shared() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counter("x"), 3);
    }

    #[test]
    fn registry_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetricsRegistry>();
        assert_send_sync::<Counter>();
        assert_send_sync::<Histogram>();
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let reg = Arc::new(MetricsRegistry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    let c = reg.counter("hits");
                    let h = reg.histogram("lat");
                    for i in 0..1000 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hits"), 4000);
        assert_eq!(snap.histogram("lat").unwrap().count, 4000);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_buckets() {
        let a = MetricsRegistry::new();
        a.counter("n").add(2);
        a.histogram("h").record(5);
        let b = MetricsRegistry::new();
        b.counter("n").add(3);
        b.counter("only_b").inc();
        b.histogram("h").record(100);
        b.histogram("h2").record(1);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("n"), 5);
        assert_eq!(merged.counter("only_b"), 1);
        let h = merged.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 105);
        assert_eq!(h.min, 5);
        assert_eq!(h.max, 100);
        assert!(merged.histogram("h2").is_some());
    }

    #[test]
    fn merge_min_handles_empty_sides() {
        let a = MetricsRegistry::new();
        a.histogram("h"); // created but never recorded
        let b = MetricsRegistry::new();
        b.histogram("h").record(9);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        let h = m.histogram("h").unwrap();
        assert_eq!((h.min, h.max, h.count), (9, 9, 1));
    }

    #[test]
    fn snapshot_json_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("a.b").add(7);
        reg.histogram("lat").record(3);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"a.b\":7"), "{json}");
        assert!(json.contains("\"lat\":{\"count\":1"), "{json}");
        assert!(json.contains("\"buckets\":[{\"le\":4,\"n\":1}]"), "{json}");
    }
}
