//! A minimal JSON value tree and renderer, so reports can be emitted as
//! machine-readable JSON without an external serialization dependency.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (rendered without a fraction).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point; non-finite values render as `null` per JSON rules.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs (insertion order preserved).
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// An object from a sorted map of counters.
    pub fn from_counter_map(map: &BTreeMap<String, u64>) -> Json {
        Json::Obj(
            map.iter()
                .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                .collect(),
        )
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Render with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Parse a JSON document. A minimal recursive-descent parser used by
    /// tests and validators to check that our machine output round-trips;
    /// it accepts standard JSON (no comments, no trailing commas).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object (first match; `None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, converting integer variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err("unterminated string".into());
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest.get(1).copied().ok_or("truncated escape")?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our renderer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number {text:?}"))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Json::Int(i))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| format!("bad number {text:?}"))
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let j = Json::obj(vec![
            ("a", Json::Int(-3)),
            ("b", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("s", Json::Str("x\"y\\z\n".into())),
            ("f", Json::Float(2.5)),
            ("nan", Json::Float(f64::NAN)),
        ]);
        assert_eq!(
            j.render(),
            r#"{"a":-3,"b":[true,null],"s":"x\"y\\z\n","f":2.5,"nan":null}"#
        );
    }

    #[test]
    fn pretty_rendering_is_valid_and_indented() {
        let j = Json::obj(vec![("outer", Json::obj(vec![("inner", Json::UInt(7))]))]);
        let p = j.render_pretty();
        assert!(p.contains("\"outer\": {\n"));
        assert!(p.contains("    \"inner\": 7"));
    }

    #[test]
    fn control_chars_escaped() {
        let j = Json::Str("\u{0001}".into());
        assert_eq!(j.render(), "\"\\u0001\"");
    }

    #[test]
    fn parse_round_trips_rendered_values() {
        let j = Json::obj(vec![
            ("a", Json::Int(-3)),
            ("b", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("s", Json::Str("x\"y\\z\nπ".into())),
            ("f", Json::Float(2.5)),
            ("big", Json::UInt(u64::MAX)),
            ("empty", Json::Obj(vec![])),
        ]);
        let parsed = Json::parse(&j.render()).expect("round trip");
        assert_eq!(parsed, j);
        let pretty = Json::parse(&j.render_pretty()).expect("pretty round trip");
        assert_eq!(pretty, j);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_parsed_tree() {
        let doc = Json::parse(r#"{"streams":[{"rows":12,"sql":"SELECT"}],"ratio":1.5}"#).unwrap();
        let streams = doc.get("streams").and_then(Json::as_arr).unwrap();
        assert_eq!(streams[0].get("rows").and_then(Json::as_f64), Some(12.0));
        assert_eq!(streams[0].get("sql").and_then(Json::as_str), Some("SELECT"));
        assert_eq!(doc.get("ratio").and_then(Json::as_f64), Some(1.5));
        assert!(doc.get("missing").is_none());
    }
}
