//! A minimal JSON value tree and renderer, so reports can be emitted as
//! machine-readable JSON without an external serialization dependency.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (rendered without a fraction).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point; non-finite values render as `null` per JSON rules.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs (insertion order preserved).
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// An object from a sorted map of counters.
    pub fn from_counter_map(map: &BTreeMap<String, u64>) -> Json {
        Json::Obj(
            map.iter()
                .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                .collect(),
        )
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Render with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let j = Json::obj(vec![
            ("a", Json::Int(-3)),
            ("b", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("s", Json::Str("x\"y\\z\n".into())),
            ("f", Json::Float(2.5)),
            ("nan", Json::Float(f64::NAN)),
        ]);
        assert_eq!(
            j.render(),
            r#"{"a":-3,"b":[true,null],"s":"x\"y\\z\n","f":2.5,"nan":null}"#
        );
    }

    #[test]
    fn pretty_rendering_is_valid_and_indented() {
        let j = Json::obj(vec![("outer", Json::obj(vec![("inner", Json::UInt(7))]))]);
        let p = j.render_pretty();
        assert!(p.contains("\"outer\": {\n"));
        assert!(p.contains("    \"inner\": 7"));
    }

    #[test]
    fn control_chars_escaped() {
        let j = Json::Str("\u{0001}".into());
        assert_eq!(j.render(), "\"\\u0001\"");
    }
}
