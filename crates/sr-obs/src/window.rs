//! Rolling-window aggregation over the log-scale histograms.
//!
//! The registry's [`Counter`]/[`Histogram`] instruments are cumulative:
//! perfect for end-of-run reports, useless for asking a live server "what
//! is p99 *right now*". This module adds windowed variants built from the
//! same base-2 log buckets: a ring of fixed-duration time slots, each an
//! independent sub-histogram, merged on demand into "the last W seconds".
//! Memory is bounded by the ring (`RING_SLOTS` slots regardless of
//! uptime), recording is O(1), and a snapshot over any window up to the
//! ring span is one bucket-wise merge — the mergeability the cumulative
//! [`HistogramSnapshot`] already has, reused for time.
//!
//! Time is injectable: every operation has an `_at` variant taking the
//! elapsed duration since the instrument's epoch, so tests drive the clock
//! deterministically; the plain methods read the wall clock.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::metrics::{HistogramSnapshot, HISTOGRAM_BUCKETS};

/// Ring capacity in slots. With one-second slots this bounds the largest
/// window at a bit over a minute — enough for the 1s/10s/60s rollups.
pub const RING_SLOTS: usize = 64;

/// Slot width. One second keeps "rolling 1s rate" meaningful and makes a
/// 60-second window 60 merges.
pub const SLOT_SECS: u64 = 1;

/// The standard rollup windows, in seconds.
pub const WINDOWS_SECS: [u64; 3] = [1, 10, 60];

/// One ring slot: a plain (non-atomic) sub-histogram for the values
/// recorded during one absolute second of the instrument's life.
#[derive(Clone)]
struct Slot {
    /// Absolute slot index this storage currently holds (`u64::MAX` =
    /// never used).
    abs: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    log: [u64; HISTOGRAM_BUCKETS],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            abs: u64::MAX,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            log: [0; HISTOGRAM_BUCKETS],
        }
    }

    fn clear(&mut self, abs: u64) {
        *self = Slot::empty();
        self.abs = abs;
    }

    fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.log[bucket] += 1;
        self.count += 1;
        // Wraps like the cumulative histogram's atomic `fetch_add` does.
        self.sum = self.sum.wrapping_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }
}

struct Ring {
    /// Absolute index of the newest slot written or rotated to.
    head: u64,
    slots: Vec<Slot>,
}

impl Ring {
    fn new() -> Ring {
        Ring {
            head: 0,
            slots: vec![Slot::empty(); RING_SLOTS],
        }
    }

    /// Bring the ring up to absolute slot `abs`, clearing every slot
    /// whose storage is being re-entered. Time never goes backwards here:
    /// a stale `abs` (possible when two threads race the clock) records
    /// into the head slot instead, which is at most `SLOT_SECS` off.
    fn rotate(&mut self, abs: u64) -> u64 {
        if abs <= self.head {
            return self.head;
        }
        if abs - self.head >= RING_SLOTS as u64 {
            // The whole ring is stale: every slot is being re-entered.
            for s in self.slots.iter_mut() {
                *s = Slot::empty();
            }
        } else {
            for a in self.head + 1..=abs {
                let i = (a % RING_SLOTS as u64) as usize;
                self.slots[i].clear(a);
            }
        }
        self.head = abs;
        abs
    }

    /// Merge the slots covering the last `window_slots` slots (the
    /// current, possibly partial, slot included) into one snapshot.
    fn merge_window(&self, window_slots: u64) -> HistogramSnapshot {
        let oldest = (self.head + 1).saturating_sub(window_slots);
        let mut out = HistogramSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        };
        for s in &self.slots {
            if s.abs == u64::MAX || s.abs < oldest || s.abs > self.head || s.count == 0 {
                continue;
            }
            out.count += s.count;
            out.sum = out.sum.wrapping_add(s.sum);
            out.min = out.min.min(s.min);
            out.max = out.max.max(s.max);
            for (o, v) in out.buckets.iter_mut().zip(&s.log) {
                *o += *v;
            }
        }
        if out.count == 0 {
            out.min = 0;
        }
        out
    }
}

/// A rolling-window view of a merged window: the merged log-scale state
/// plus how much wall time the window actually covered (a 60 s window on a
/// 5 s old instrument covers 5 s — rates divide by covered time, not the
/// nominal window).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Nominal window length in seconds.
    pub secs: u64,
    /// Wall time the merged slots actually span, in seconds.
    pub covered_secs: f64,
    /// The merged histogram state for the window.
    pub hist: HistogramSnapshot,
}

impl WindowStats {
    /// Events per second over the covered time.
    pub fn rate(&self) -> f64 {
        self.hist.count as f64 / self.covered_secs.max(1e-9)
    }

    /// Value-units per second over the covered time (bytes/s for a byte
    /// histogram).
    pub fn throughput(&self) -> f64 {
        self.hist.sum as f64 / self.covered_secs.max(1e-9)
    }

    /// JSON form used by the STATS exposition.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("secs", Json::UInt(self.secs)),
            ("covered_secs", Json::Float(self.covered_secs)),
            ("count", Json::UInt(self.hist.count)),
            ("rate", Json::Float(self.rate())),
            ("mean", Json::Float(self.hist.mean())),
            ("p50", Json::UInt(self.hist.quantile(0.50))),
            ("p99", Json::UInt(self.hist.quantile(0.99))),
            ("p999", Json::UInt(self.hist.quantile(0.999))),
            ("max", Json::UInt(self.hist.max)),
        ])
    }
}

/// A histogram over a ring of fixed-duration slots: rolling rates and
/// quantiles over the last 1 s / 10 s / 60 s with bounded memory.
pub struct WindowedHistogram {
    epoch: Instant,
    ring: Mutex<Ring>,
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        WindowedHistogram::new()
    }
}

impl std::fmt::Debug for WindowedHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ring = self.ring.lock().expect("window ring lock");
        f.debug_struct("WindowedHistogram")
            .field("head", &ring.head)
            .finish()
    }
}

impl WindowedHistogram {
    /// An empty instrument whose epoch is "now".
    pub fn new() -> WindowedHistogram {
        WindowedHistogram {
            epoch: Instant::now(),
            ring: Mutex::new(Ring::new()),
        }
    }

    fn abs_of(elapsed: Duration) -> u64 {
        elapsed.as_secs() / SLOT_SECS
    }

    /// Record one observation at wall-clock "now".
    pub fn record(&self, value: u64) {
        self.record_at(value, self.epoch.elapsed());
    }

    /// Record one observation at an explicit elapsed-time point — the
    /// injectable-clock variant the determinism tests drive.
    pub fn record_at(&self, value: u64, elapsed: Duration) {
        let abs = Self::abs_of(elapsed);
        let mut ring = self.ring.lock().expect("window ring lock");
        let abs = ring.rotate(abs);
        let i = (abs % RING_SLOTS as u64) as usize;
        if ring.slots[i].abs != abs {
            ring.slots[i].clear(abs);
        }
        ring.slots[i].record(value);
    }

    /// The rolling view over the last `secs` seconds, at "now".
    pub fn window(&self, secs: u64) -> WindowStats {
        self.window_at(secs, self.epoch.elapsed())
    }

    /// [`WindowedHistogram::window`] with an injected clock.
    pub fn window_at(&self, secs: u64, elapsed: Duration) -> WindowStats {
        let secs = secs.max(1).min((RING_SLOTS as u64) * SLOT_SECS);
        let window_slots = secs.div_ceil(SLOT_SECS);
        let mut ring = self.ring.lock().expect("window ring lock");
        let head = ring.rotate(Self::abs_of(elapsed));
        let hist = ring.merge_window(window_slots);
        drop(ring);
        // Covered wall time: from the oldest merged slot's opening
        // boundary to "now", capped below by one microsecond.
        let oldest = (head + 1).saturating_sub(window_slots);
        let covered = (elapsed.as_secs_f64() - (oldest * SLOT_SECS) as f64).max(1e-6);
        WindowStats {
            secs,
            covered_secs: covered.min(secs as f64),
            hist,
        }
    }

    /// The standard 1 s / 10 s / 60 s rollups as one JSON object.
    pub fn to_json(&self) -> Json {
        self.to_json_at(self.epoch.elapsed())
    }

    /// [`WindowedHistogram::to_json`] with an injected clock.
    pub fn to_json_at(&self, elapsed: Duration) -> Json {
        Json::Obj(
            WINDOWS_SECS
                .iter()
                .map(|&w| (format!("{w}s"), self.window_at(w, elapsed).to_json()))
                .collect(),
        )
    }
}

/// A counter over the same ring: rolling event rates without quantiles.
/// (`add`-heavy instruments like rows/bytes throughput use this — the sum
/// is the payload, per-event distribution is not interesting.)
pub struct WindowedCounter {
    inner: WindowedHistogram,
}

impl Default for WindowedCounter {
    fn default() -> Self {
        WindowedCounter::new()
    }
}

impl std::fmt::Debug for WindowedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedCounter").finish()
    }
}

impl WindowedCounter {
    /// An empty instrument whose epoch is "now".
    pub fn new() -> WindowedCounter {
        WindowedCounter {
            inner: WindowedHistogram::new(),
        }
    }

    /// Add `n` at wall-clock "now".
    pub fn add(&self, n: u64) {
        self.inner.record(n);
    }

    /// Add `n` at an explicit elapsed-time point.
    pub fn add_at(&self, n: u64, elapsed: Duration) {
        self.inner.record_at(n, elapsed);
    }

    /// Rolling view over the last `secs` seconds.
    pub fn window(&self, secs: u64) -> WindowStats {
        self.inner.window(secs)
    }

    /// [`WindowedCounter::window`] with an injected clock.
    pub fn window_at(&self, secs: u64, elapsed: Duration) -> WindowStats {
        self.inner.window_at(secs, elapsed)
    }

    /// The standard rollups: per window, the summed value, its per-second
    /// rate, and the event count.
    pub fn to_json(&self) -> Json {
        self.to_json_at(self.inner.epoch.elapsed())
    }

    /// [`WindowedCounter::to_json`] with an injected clock.
    pub fn to_json_at(&self, elapsed: Duration) -> Json {
        Json::Obj(
            WINDOWS_SECS
                .iter()
                .map(|&w| {
                    let s = self.window_at(w, elapsed);
                    (
                        format!("{w}s"),
                        Json::obj(vec![
                            ("secs", Json::UInt(s.secs)),
                            ("covered_secs", Json::Float(s.covered_secs)),
                            ("events", Json::UInt(s.hist.count)),
                            ("total", Json::UInt(s.hist.sum)),
                            ("rate", Json::Float(s.throughput())),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: f64) -> Duration {
        Duration::from_secs_f64(secs)
    }

    #[test]
    fn window_sees_only_recent_slots() {
        let h = WindowedHistogram::new();
        h.record_at(100, at(0.5));
        h.record_at(200, at(5.5));
        h.record_at(300, at(9.5));
        // At t=9.9 a 10 s window sees all three, a 1 s window only the last.
        let w10 = h.window_at(10, at(9.9));
        assert_eq!(w10.hist.count, 3);
        assert_eq!(w10.hist.sum, 600);
        let w1 = h.window_at(1, at(9.9));
        assert_eq!(w1.hist.count, 1);
        assert_eq!(w1.hist.sum, 300);
    }

    #[test]
    fn slots_expire_deterministically() {
        let h = WindowedHistogram::new();
        h.record_at(7, at(0.2));
        // Still visible while the 10 s window reaches back to slot 0...
        assert_eq!(h.window_at(10, at(9.0)).hist.count, 1);
        // ...gone the moment slot 0 falls off the window's trailing edge.
        assert_eq!(h.window_at(10, at(10.0)).hist.count, 0);
        // And gone from the 60 s window once a minute passes.
        assert_eq!(h.window_at(60, at(59.0)).hist.count, 1);
        assert_eq!(h.window_at(60, at(60.0)).hist.count, 0);
    }

    #[test]
    fn ring_survives_a_long_idle_gap() {
        let h = WindowedHistogram::new();
        h.record_at(1, at(0.0));
        // A gap far beyond the ring length clears everything stale.
        h.record_at(9, at(1_000_000.0));
        let w = h.window_at(60, at(1_000_000.5));
        assert_eq!(w.hist.count, 1);
        assert_eq!(w.hist.sum, 9);
    }

    #[test]
    fn stale_clock_reading_records_into_head() {
        let h = WindowedHistogram::new();
        h.record_at(10, at(30.0));
        // A racing thread whose clock read predates the rotation must not
        // resurrect an expired slot.
        h.record_at(20, at(29.2));
        let w = h.window_at(1, at(30.1));
        assert_eq!(w.hist.count, 2, "stale record lands in the head slot");
    }

    #[test]
    fn rates_divide_by_covered_time() {
        let h = WindowedHistogram::new();
        for i in 0..10 {
            h.record_at(1000, at(0.1 + i as f64 * 0.4));
        }
        // 10 events in ~4 s; the 60 s window only covers ~4 s of life.
        let w = h.window_at(60, at(4.0));
        assert_eq!(w.hist.count, 10);
        assert!(
            (w.rate() - 2.5).abs() < 0.5,
            "rate {} should be ~2.5/s",
            w.rate()
        );
        assert!(w.covered_secs <= 4.01);
    }

    #[test]
    fn counter_windows_sum_values() {
        let c = WindowedCounter::new();
        c.add_at(500, at(0.1));
        c.add_at(1500, at(0.9));
        let w = c.window_at(1, at(0.95));
        assert_eq!(w.hist.sum, 2000);
        assert_eq!(w.hist.count, 2);
        assert!(w.throughput() > 2000.0, "covered < 1 s inflates the rate");
    }

    #[test]
    fn json_shape_has_standard_windows() {
        let h = WindowedHistogram::new();
        h.record_at(1000, at(0.1));
        let j = h.to_json_at(at(0.2)).render();
        for key in ["\"1s\"", "\"10s\"", "\"60s\"", "\"p99\"", "\"rate\""] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn window_is_clamped_to_ring_span() {
        let h = WindowedHistogram::new();
        h.record_at(5, at(0.1));
        let w = h.window_at(10_000, at(0.2));
        assert_eq!(w.secs, RING_SLOTS as u64 * SLOT_SECS);
        assert_eq!(w.hist.count, 1);
    }
}
