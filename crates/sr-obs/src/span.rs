//! Hierarchical timed spans for single-threaded driver code.
//!
//! A [`Spans`] recorder keeps a stack of open span names; entering a span
//! pushes onto the stack and the RAII [`SpanGuard`] records the elapsed
//! time against the full `/`-joined path on drop. Repeated visits to the
//! same path aggregate (call count + total time), which is what the
//! explain/metrics reports want: one line per pipeline stage, not one per
//! invocation.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use crate::json::Json;

/// Aggregate statistics for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span was entered.
    pub count: u64,
    /// Total time spent inside (including children).
    pub total: Duration,
}

/// A single-threaded hierarchical span recorder.
#[derive(Debug, Default)]
pub struct Spans {
    stack: RefCell<Vec<&'static str>>,
    agg: RefCell<BTreeMap<String, SpanStat>>,
}

impl Spans {
    /// An empty recorder.
    pub fn new() -> Self {
        Spans::default()
    }

    /// Enter a span; it closes (and records) when the guard drops.
    pub fn enter(&self, name: &'static str) -> SpanGuard<'_> {
        self.stack.borrow_mut().push(name);
        SpanGuard {
            spans: self,
            start: Instant::now(),
        }
    }

    /// Time a closure inside a span.
    pub fn time<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let _guard = self.enter(name);
        f()
    }

    fn record_current(&self, elapsed: Duration) {
        let path = self.stack.borrow().join("/");
        self.stack.borrow_mut().pop();
        let mut agg = self.agg.borrow_mut();
        let stat = agg.entry(path).or_default();
        stat.count += 1;
        stat.total += elapsed;
    }

    /// Aggregated statistics by `/`-joined path, sorted by path.
    pub fn stats(&self) -> BTreeMap<String, SpanStat> {
        self.agg.borrow().clone()
    }

    /// Total time recorded against one path (zero when absent).
    pub fn total(&self, path: &str) -> Duration {
        self.agg
            .borrow()
            .get(path)
            .map(|s| s.total)
            .unwrap_or(Duration::ZERO)
    }

    /// JSON form: `{path: {"count": n, "total_ms": t}}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.agg
                .borrow()
                .iter()
                .map(|(path, stat)| {
                    (
                        path.clone(),
                        Json::obj(vec![
                            ("count", Json::UInt(stat.count)),
                            ("total_ms", Json::Float(stat.total.as_secs_f64() * 1e3)),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

/// Closes its span on drop.
pub struct SpanGuard<'a> {
    spans: &'a Spans,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.spans.record_current(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_paths() {
        let spans = Spans::new();
        {
            let _m = spans.enter("materialize");
            {
                let _p = spans.enter("plan");
            }
            {
                let _e = spans.enter("execute");
                {
                    let _d = spans.enter("decode");
                }
            }
        }
        let stats = spans.stats();
        let paths: Vec<&str> = stats.keys().map(String::as_str).collect();
        assert_eq!(
            paths,
            vec![
                "materialize",
                "materialize/execute",
                "materialize/execute/decode",
                "materialize/plan",
            ]
        );
        // Parent spans include child time.
        assert!(spans.total("materialize") >= spans.total("materialize/execute"));
        assert!(spans.total("materialize/execute") >= spans.total("materialize/execute/decode"));
    }

    #[test]
    fn repeated_spans_aggregate() {
        let spans = Spans::new();
        for _ in 0..3 {
            spans.time("stage", || {});
        }
        let stats = spans.stats();
        assert_eq!(stats["stage"].count, 3);
    }

    #[test]
    fn time_returns_closure_value() {
        let spans = Spans::new();
        let v = spans.time("calc", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(spans.stats()["calc"].count, 1);
    }

    #[test]
    fn json_has_count_and_total() {
        let spans = Spans::new();
        spans.time("a", || std::thread::sleep(Duration::from_millis(1)));
        let j = spans.to_json().render();
        assert!(j.contains("\"a\":{\"count\":1,\"total_ms\":"), "{j}");
    }
}
