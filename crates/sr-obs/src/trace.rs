//! Structured timeline tracing for the pipeline, exported as Chrome
//! trace-event JSON.
//!
//! Aggregate counters and histograms ([`crate::metrics`]) answer "how much
//! in total"; once execution is pipelined they stop answering "where did
//! *this* run's time go" — server workers, stream decode, and the tagger's
//! k-way merge all overlap. A [`Tracer`] records begin/end/instant/counter
//! events with monotonic timestamps onto *lanes* (Chrome `tid`s): one lane
//! per recording thread plus any number of named virtual lanes (e.g. one
//! per tuple stream). Events land in per-thread buffers behind uncontended
//! mutexes, so recording never serializes the threads being measured;
//! buffers are merged and time-sorted only at snapshot.
//!
//! Everything is optional by construction: call sites hold an
//! `Option<&Tracer>` (usually via `Option<Arc<Tracer>>`) and no event is
//! allocated — not even a timestamp taken — when no tracer is installed.
//!
//! [`Tracer::to_chrome_json`] renders the snapshot in the Chrome
//! trace-event format, loadable directly in Perfetto or
//! `chrome://tracing`.
//!
//! ```
//! use sr_obs::Tracer;
//! let t = Tracer::new();
//! t.name_current_thread("driver");
//! {
//!     let _span = t.span("phase.plan");
//!     t.instant(t.current_lane(), "picked plan", Some("edges=3".into()));
//! }
//! let events = t.events();
//! assert_eq!(events.len(), 3);
//! assert!(t.to_chrome_json().render().contains("\"traceEvents\""));
//! ```

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;

/// Process-wide lane allocator: real threads and virtual lanes draw from
/// the same sequence, so a lane id is unique across both.
static NEXT_LANE: AtomicU64 = AtomicU64::new(1);
/// Process-wide tracer id allocator (keys the per-thread buffer cache).
static NEXT_TRACER: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The current thread's lane id (0 = not yet assigned).
    static THREAD_LANE: Cell<u64> = const { Cell::new(0) };
    /// Per-thread event buffers, one per tracer this thread has recorded
    /// into. Tracer ids are never reused, so a stale entry is inert.
    static THREAD_BUFS: RefCell<Vec<(u64, Arc<EventBuf>)>> = const { RefCell::new(Vec::new()) };
}

/// The current thread's lane id, assigned on first use.
fn thread_lane() -> u64 {
    THREAD_LANE.with(|l| {
        let v = l.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
            l.set(v);
            v
        }
    })
}

/// Event kind, mirroring the Chrome trace-event phases we emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Start of a duration interval (`ph: "B"`).
    Begin,
    /// End of a duration interval (`ph: "E"`).
    End,
    /// A point event (`ph: "i"`).
    Instant,
    /// A sampled counter value (`ph: "C"`).
    Counter,
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (pairs `Begin`/`End`).
    pub name: Cow<'static, str>,
    /// Phase kind.
    pub phase: TracePhase,
    /// Nanoseconds since the tracer's epoch (monotonic).
    pub ts_ns: u64,
    /// Lane (Chrome `tid`) the event belongs to — not necessarily the
    /// thread that recorded it (a consumer thread records a stream's
    /// events onto the stream's own virtual lane).
    pub lane: u64,
    /// Optional free-form annotation (rendered as `args.detail`).
    pub detail: Option<String>,
    /// Counter value (only meaningful for [`TracePhase::Counter`]).
    pub value: f64,
}

/// One thread's event buffer for one tracer. The mutex is uncontended in
/// steady state (only the owning thread records; the snapshotting thread
/// locks it once at the end).
#[derive(Default)]
struct EventBuf {
    events: Mutex<Vec<TraceEvent>>,
}

/// A thread-safe trace recorder. See the module docs.
pub struct Tracer {
    id: u64,
    epoch: Instant,
    bufs: Mutex<Vec<Arc<EventBuf>>>,
    /// `lane id → display name`, insertion-ordered.
    lane_names: Mutex<Vec<(u64, String)>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tracer#{}", self.id)
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh tracer; its epoch (timestamp zero) is now.
    pub fn new() -> Tracer {
        Tracer {
            id: NEXT_TRACER.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            bufs: Mutex::new(Vec::new()),
            lane_names: Mutex::new(Vec::new()),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Name a lane (replacing any previous name).
    fn set_lane_name(&self, lane: u64, name: String) {
        let mut names = self.lane_names.lock().expect("lane names poisoned");
        match names.iter_mut().find(|(l, _)| *l == lane) {
            Some((_, n)) => *n = name,
            None => names.push((lane, name)),
        }
    }

    /// The current thread's event buffer for this tracer, registering it
    /// (and a default name for the thread's lane) on first use.
    fn buf(&self) -> Arc<EventBuf> {
        THREAD_BUFS.with(|cell| {
            let mut bufs = cell.borrow_mut();
            if let Some((_, b)) = bufs.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(b);
            }
            let b = Arc::new(EventBuf::default());
            self.bufs
                .lock()
                .expect("tracer bufs poisoned")
                .push(Arc::clone(&b));
            bufs.push((self.id, Arc::clone(&b)));
            let lane = thread_lane();
            let mut names = self.lane_names.lock().expect("lane names poisoned");
            if !names.iter().any(|(l, _)| *l == lane) {
                names.push((lane, format!("thread-{lane}")));
            }
            b
        })
    }

    fn emit(&self, ev: TraceEvent) {
        self.buf()
            .events
            .lock()
            .expect("event buf poisoned")
            .push(ev);
    }

    /// The current thread's lane id (registering a default name).
    pub fn current_lane(&self) -> u64 {
        let _ = self.buf();
        thread_lane()
    }

    /// Give the current thread's lane a display name; returns the lane id.
    pub fn name_current_thread(&self, name: impl Into<String>) -> u64 {
        let lane = self.current_lane();
        self.set_lane_name(lane, name.into());
        lane
    }

    /// Allocate a named *virtual* lane: a timeline that is not a real
    /// thread (e.g. one per tuple stream). Any thread may record onto it.
    pub fn lane(&self, name: impl Into<String>) -> u64 {
        let lane = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
        self.set_lane_name(lane, name.into());
        lane
    }

    /// Record the start of an interval on a lane.
    pub fn begin(&self, lane: u64, name: impl Into<Cow<'static, str>>, detail: Option<String>) {
        self.emit(TraceEvent {
            name: name.into(),
            phase: TracePhase::Begin,
            ts_ns: self.now_ns(),
            lane,
            detail,
            value: 0.0,
        });
    }

    /// Record the end of the most recent matching interval on a lane.
    pub fn end(&self, lane: u64, name: impl Into<Cow<'static, str>>) {
        self.emit(TraceEvent {
            name: name.into(),
            phase: TracePhase::End,
            ts_ns: self.now_ns(),
            lane,
            detail: None,
            value: 0.0,
        });
    }

    /// Record a point event on a lane.
    pub fn instant(&self, lane: u64, name: impl Into<Cow<'static, str>>, detail: Option<String>) {
        self.emit(TraceEvent {
            name: name.into(),
            phase: TracePhase::Instant,
            ts_ns: self.now_ns(),
            lane,
            detail,
            value: 0.0,
        });
    }

    /// Record a counter sample on a lane (rendered as a Chrome counter
    /// track).
    pub fn counter(&self, lane: u64, name: impl Into<Cow<'static, str>>, value: f64) {
        self.emit(TraceEvent {
            name: name.into(),
            phase: TracePhase::Counter,
            ts_ns: self.now_ns(),
            lane,
            detail: None,
            value,
        });
    }

    /// An RAII interval on the current thread's lane.
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> TraceSpan<'_> {
        TraceSpan::new(Some(self), name)
    }

    /// Registered lanes as `(lane id, name)`, in registration order.
    pub fn lanes(&self) -> Vec<(u64, String)> {
        self.lane_names.lock().expect("lane names poisoned").clone()
    }

    /// Merge every thread's buffer into one snapshot, sorted by timestamp
    /// (stable, so same-timestamp events keep their recording order).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for buf in self.bufs.lock().expect("tracer bufs poisoned").iter() {
            all.extend(
                buf.events
                    .lock()
                    .expect("event buf poisoned")
                    .iter()
                    .cloned(),
            );
        }
        all.sort_by_key(|e| e.ts_ns);
        all
    }

    /// Render the snapshot as a Chrome trace-event JSON document
    /// (`{"traceEvents": [...]}`), loadable in Perfetto or
    /// `chrome://tracing`. Timestamps are microseconds; lanes appear as
    /// named threads of a single process.
    pub fn to_chrome_json(&self) -> Json {
        let mut events = Vec::new();
        for (lane, name) in self.lanes() {
            events.push(Json::obj(vec![
                ("name", Json::Str("thread_name".into())),
                ("ph", Json::Str("M".into())),
                ("pid", Json::UInt(1)),
                ("tid", Json::UInt(lane)),
                ("args", Json::obj(vec![("name", Json::Str(name))])),
            ]));
        }
        for e in self.events() {
            let ph = match e.phase {
                TracePhase::Begin => "B",
                TracePhase::End => "E",
                TracePhase::Instant => "i",
                TracePhase::Counter => "C",
            };
            let mut fields = vec![
                ("name".to_string(), Json::Str(e.name.into_owned())),
                ("cat".to_string(), Json::Str("silkroute".into())),
                ("ph".to_string(), Json::Str(ph.into())),
                ("ts".to_string(), Json::Float(e.ts_ns as f64 / 1000.0)),
                ("pid".to_string(), Json::UInt(1)),
                ("tid".to_string(), Json::UInt(e.lane)),
            ];
            if e.phase == TracePhase::Instant {
                // Thread-scoped instant marker.
                fields.push(("s".to_string(), Json::Str("t".into())));
            }
            let mut args = Vec::new();
            if e.phase == TracePhase::Counter {
                args.push(("value".to_string(), Json::Float(e.value)));
            }
            if let Some(d) = e.detail {
                args.push(("detail".to_string(), Json::Str(d)));
            }
            if !args.is_empty() {
                fields.push(("args".to_string(), Json::Obj(args)));
            }
            events.push(Json::Obj(fields));
        }
        Json::obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::Str("ms".into())),
        ])
    }
}

/// An RAII trace interval: emits `Begin` on creation and `End` on drop.
/// Built from an `Option<&Tracer>` so instrumented code pays nothing —
/// no allocation, no clock read — when tracing is off.
#[must_use = "a span measures the interval until it is dropped"]
pub struct TraceSpan<'a> {
    tracer: Option<&'a Tracer>,
    lane: u64,
    name: Cow<'static, str>,
}

impl<'a> TraceSpan<'a> {
    /// Begin an interval on the current thread's lane (no-op when
    /// `tracer` is `None`).
    pub fn new(tracer: Option<&'a Tracer>, name: impl Into<Cow<'static, str>>) -> TraceSpan<'a> {
        TraceSpan::with_detail(tracer, name, None)
    }

    /// Begin an interval with an annotation (no-op when `tracer` is
    /// `None`; pass detail via `tracer.map(...)` to skip building it when
    /// tracing is off).
    pub fn with_detail(
        tracer: Option<&'a Tracer>,
        name: impl Into<Cow<'static, str>>,
        detail: Option<String>,
    ) -> TraceSpan<'a> {
        match tracer {
            Some(t) => {
                let lane = t.current_lane();
                let name = name.into();
                t.begin(lane, name.clone(), detail);
                TraceSpan {
                    tracer: Some(t),
                    lane,
                    name,
                }
            }
            None => TraceSpan {
                tracer: None,
                lane: 0,
                name: Cow::Borrowed(""),
            },
        }
    }
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        if let Some(t) = self.tracer {
            t.end(self.lane, std::mem::take(&mut self.name));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every `Begin` has a matching `End` on the same lane; timestamps are
    /// monotone per lane.
    fn assert_well_formed(events: &[TraceEvent]) {
        use std::collections::HashMap;
        let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
        let mut last_ts: HashMap<u64, u64> = HashMap::new();
        for e in events {
            let prev = last_ts.entry(e.lane).or_insert(0);
            assert!(e.ts_ns >= *prev, "timestamps regress on lane {}", e.lane);
            *prev = e.ts_ns;
            match e.phase {
                TracePhase::Begin => stacks.entry(e.lane).or_default().push(e.name.to_string()),
                TracePhase::End => {
                    let top = stacks.entry(e.lane).or_default().pop();
                    assert_eq!(top.as_deref(), Some(e.name.as_ref()), "unbalanced end");
                }
                _ => {}
            }
        }
        for (lane, stack) in stacks {
            assert!(stack.is_empty(), "lane {lane} left spans open: {stack:?}");
        }
    }

    #[test]
    fn spans_nest_and_balance() {
        let t = Tracer::new();
        {
            let _outer = t.span("outer");
            let _inner = t.span("inner");
        }
        let evs = t.events();
        assert_eq!(evs.len(), 4);
        assert_well_formed(&evs);
        // inner closes before outer
        assert_eq!(evs[1].name, "inner");
        assert_eq!(evs[2].name, "inner");
        assert_eq!(evs[3].name, "outer");
    }

    #[test]
    fn none_tracer_records_nothing() {
        let _s = TraceSpan::new(None, "phantom");
        // Nothing to assert beyond "does not panic / allocate a tracer";
        // the type makes it impossible to emit without a tracer.
    }

    #[test]
    fn threads_get_distinct_lanes_merged_in_time_order() {
        let t = Arc::new(Tracer::new());
        let main_lane = t.name_current_thread("main");
        t.begin(main_lane, "work", None);
        let t2 = Arc::clone(&t);
        let other_lane = std::thread::spawn(move || {
            let lane = t2.name_current_thread("worker");
            let _s = t2.span("side");
            lane
        })
        .join()
        .unwrap();
        t.end(main_lane, "work");
        assert_ne!(main_lane, other_lane);
        let evs = t.events();
        assert_eq!(evs.len(), 4);
        assert_well_formed(&evs);
        let lanes = t.lanes();
        assert!(lanes.iter().any(|(_, n)| n == "main"));
        assert!(lanes.iter().any(|(_, n)| n == "worker"));
    }

    #[test]
    fn virtual_lane_recorded_from_consumer_thread() {
        let t = Tracer::new();
        let lane = t.lane("stream 0");
        t.begin(lane, "stall", None);
        t.end(lane, "stall");
        t.counter(lane, "rows", 42.0);
        let evs = t.events();
        assert_well_formed(&evs);
        assert!(evs.iter().all(|e| e.lane == lane));
        assert_eq!(evs[2].value, 42.0);
    }

    #[test]
    fn chrome_export_has_metadata_and_phases() {
        let t = Tracer::new();
        t.name_current_thread("driver");
        {
            let _s = t.span("phase");
            t.instant(t.current_lane(), "mark", Some("x=1".into()));
        }
        let lane = t.lane("extra");
        t.counter(lane, "rows", 7.0);
        let doc = t.to_chrome_json().render();
        for needle in [
            "\"traceEvents\"",
            "\"thread_name\"",
            "\"driver\"",
            "\"extra\"",
            "\"ph\":\"B\"",
            "\"ph\":\"E\"",
            "\"ph\":\"i\"",
            "\"ph\":\"C\"",
            "\"displayTimeUnit\":\"ms\"",
        ] {
            assert!(doc.contains(needle), "missing {needle} in {doc}");
        }
        let parsed = Json::parse(&doc).expect("chrome trace is valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // 2 thread_name metadata + B + i + E + C
        assert_eq!(events.len(), 6);
    }

    #[test]
    fn detail_lands_in_args() {
        let t = Tracer::new();
        let _ = TraceSpan::with_detail(Some(&t), "q", Some("SELECT 1".into()));
        let doc = t.to_chrome_json().render();
        assert!(doc.contains("\"detail\":\"SELECT 1\""), "{doc}");
    }
}
