//! Exhaustive plan enumeration (paper §4).
//!
//! "One important feature of a view tree is that it permits us to generate
//! and compare all possible execution plans for an RXL query." For a tree
//! with `|E|` edges there are `2^|E|` plans; Config A's experiments run all
//! of them. This module enumerates the plan space with *estimated* costs
//! (no execution) — the experiment harness in `silkroute` does the timed
//! runs.

use serde::{Deserialize, Serialize};
use sr_data::Database;
use sr_engine::EngineError;
use sr_sqlgen::QueryStyle;
use sr_viewtree::{all_edge_sets, components, EdgeSet, ViewTree};

use crate::oracle::Oracle;

/// An enumerated plan with its estimated cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankedPlan {
    /// Included edges (bit i ↔ edge to node i+1).
    pub edge_bits: u64,
    /// Number of SQL queries / tuple streams (`|E| − |edges| + 1`).
    pub streams: usize,
    /// Estimated combined cost under the oracle's parameters.
    pub estimated_cost: f64,
}

/// Estimate every plan in the `2^|E|` space and return them sorted by cost
/// (cheapest first). The oracle's cache makes this cheap: there are only
/// `O(|E| · 2^|E|)` component evaluations but far fewer distinct components.
pub fn rank_all_plans(
    tree: &ViewTree,
    db: &Database,
    oracle: &Oracle<'_>,
    reduce: bool,
) -> Result<Vec<RankedPlan>, EngineError> {
    let mut out = Vec::with_capacity(1usize << tree.edge_count());
    for edges in all_edge_sets(tree) {
        let cost = oracle.plan_cost(tree, db, edges, reduce, QueryStyle::OuterJoin)?;
        out.push(RankedPlan {
            edge_bits: edges.bits(),
            streams: components(tree, edges).len(),
            estimated_cost: cost,
        });
    }
    out.sort_by(|a, b| a.estimated_cost.total_cmp(&b.estimated_cost));
    Ok(out)
}

/// The estimated-optimal edge set.
pub fn estimated_best(
    tree: &ViewTree,
    db: &Database,
    oracle: &Oracle<'_>,
    reduce: bool,
) -> Result<EdgeSet, EngineError> {
    let ranked = rank_all_plans(tree, db, oracle, reduce)?;
    Ok(EdgeSet::from_bits(ranked[0].edge_bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::CostParams;
    use sr_engine::Server;
    use sr_tpch::{generate, Scale};
    use sr_viewtree::build;
    use std::sync::Arc;

    fn setup() -> (ViewTree, Server) {
        let db = generate(Scale::mb(0.05)).unwrap();
        let q = sr_rxl::parse(
            "from Supplier $s construct <supplier>\
               <name>$s.name</name>\
               { from PartSupp $ps where $s.suppkey = $ps.suppkey \
                 construct <part>$ps.partkey</part> }\
             </supplier>",
        )
        .unwrap();
        let tree = build(&q, &db).unwrap();
        (tree, Server::new(Arc::new(db)))
    }

    #[test]
    fn enumerates_full_plan_space() {
        let (tree, server) = setup();
        let oracle = Oracle::new(&server, CostParams::default());
        let ranked = rank_all_plans(&tree, server.database(), &oracle, true).unwrap();
        assert_eq!(ranked.len(), 1 << tree.edge_count());
        // Sorted ascending.
        for w in ranked.windows(2) {
            assert!(w[0].estimated_cost <= w[1].estimated_cost);
        }
        // Stream counts are consistent with edge counts.
        for p in &ranked {
            let set = EdgeSet::from_bits(p.edge_bits);
            assert_eq!(p.streams, tree.edge_count() - set.len() + 1);
        }
    }

    #[test]
    fn best_plan_is_reachable() {
        let (tree, server) = setup();
        let oracle = Oracle::new(&server, CostParams::default());
        let best = estimated_best(&tree, server.database(), &oracle, true).unwrap();
        assert!(best.len() <= tree.edge_count());
    }

    #[test]
    fn estimation_reuses_component_cache() {
        let (tree, server) = setup();
        let oracle = Oracle::new(&server, CostParams::default());
        rank_all_plans(&tree, server.database(), &oracle, true).unwrap();
        // Distinct component queries are far fewer than total evaluations.
        assert!(oracle.requests() < oracle.evaluations());
    }
}
