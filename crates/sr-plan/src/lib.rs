#![warn(missing_docs)]
//! # sr-plan
//!
//! Plan selection for SilkRoute-style XML view materialization ("Efficient
//! Evaluation of XML Middle-ware Queries", SIGMOD 2001, §5):
//!
//! * [`oracle`] — the RDBMS-backed cost oracle with the paper's linear
//!   model `cost(q, a, b) = a·evaluation_cost(q) + b·data_size(q)`,
//!   caching and counting estimate requests;
//! * [`enumerate`] — exhaustive ranking of all `2^|E|` plans by estimated
//!   cost;
//! * [`greedy`] — the `genPlan` algorithm (Fig. 17) producing mandatory and
//!   optional edge sets;
//! * [`capabilities`] — permissible-plan filtering for engines lacking
//!   outer joins or unions (§3.4).

pub mod capabilities;
pub mod enumerate;
pub mod greedy;
pub mod oracle;
pub mod recost;

pub use capabilities::{
    permissible, permissible_plans, required_features, Capabilities, RequiredFeatures,
};
pub use enumerate::{estimated_best, rank_all_plans, RankedPlan};
pub use greedy::{gen_plan, gen_plan_capable, EdgeChoice, GreedyResult};
pub use oracle::{ActualStore, CostParams, Oracle};
pub use recost::{RecostConfig, Recoster};
