//! Source capabilities and permissible plans (paper §3.4).
//!
//! "Some of the plans SilkRoute produces do not require outer union, outer
//! join, or the `with` clause. … This characteristic is especially useful
//! in a middle-ware system, because all SQL engines do not necessarily
//! support all these constructs. In those cases, SilkRoute chooses
//! permissible plans based on the source description of the underlying
//! RDBMS."
//!
//! [`Capabilities`] records what the target engine supports;
//! [`required_features`] inspects the SQL a plan generates;
//! [`permissible_plans`] filters the `2^|E|` plan space accordingly. The
//! fully partitioned plan is always permissible (it needs neither outer
//! joins nor unions), so a plan always exists.

use serde::{Deserialize, Serialize};
use sr_data::Database;
use sr_engine::EngineError;
use sr_sqlgen::{generate_queries, PlanSpec, QueryStyle};
use sr_viewtree::{all_edge_sets, EdgeSet, ViewTree};

/// SQL constructs the target engine supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capabilities {
    /// `LEFT OUTER JOIN`.
    pub outer_join: bool,
    /// `UNION ALL`.
    pub union_all: bool,
}

impl Capabilities {
    /// A fully featured engine (every plan permissible).
    pub fn full() -> Capabilities {
        Capabilities {
            outer_join: true,
            union_all: true,
        }
    }

    /// A minimal select-project-join engine.
    pub fn minimal() -> Capabilities {
        Capabilities {
            outer_join: false,
            union_all: false,
        }
    }
}

impl Default for Capabilities {
    fn default() -> Self {
        Capabilities::full()
    }
}

/// SQL constructs a concrete plan needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RequiredFeatures {
    /// Needs `LEFT OUTER JOIN`.
    pub outer_join: bool,
    /// Needs `UNION ALL`.
    pub union_all: bool,
}

impl RequiredFeatures {
    /// Is this requirement satisfied by the capabilities?
    pub fn satisfied_by(self, caps: Capabilities) -> bool {
        (!self.outer_join || caps.outer_join) && (!self.union_all || caps.union_all)
    }
}

/// The features a plan's generated SQL actually uses.
pub fn required_features(
    tree: &ViewTree,
    db: &Database,
    spec: PlanSpec,
) -> Result<RequiredFeatures, EngineError> {
    let mut req = RequiredFeatures::default();
    for q in generate_queries(tree, db, spec)? {
        req.outer_join |= q.plan.uses_outer_join();
        req.union_all |= q.plan.uses_union();
    }
    Ok(req)
}

/// Is the plan permissible on an engine with the given capabilities?
pub fn permissible(
    tree: &ViewTree,
    db: &Database,
    spec: PlanSpec,
    caps: Capabilities,
) -> Result<bool, EngineError> {
    Ok(required_features(tree, db, spec)?.satisfied_by(caps))
}

/// All permissible edge sets for an engine (outer-join style, with the
/// given reduction setting).
pub fn permissible_plans(
    tree: &ViewTree,
    db: &Database,
    caps: Capabilities,
    reduce: bool,
) -> Result<Vec<EdgeSet>, EngineError> {
    let mut out = Vec::new();
    for edges in all_edge_sets(tree) {
        let spec = PlanSpec {
            edges,
            reduce,
            style: QueryStyle::OuterJoin,
        };
        if permissible(tree, db, spec, caps)? {
            out.push(edges);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_engine::Server;
    use sr_tpch::{generate, Scale};
    use sr_viewtree::build;
    use std::sync::Arc;

    fn setup() -> (ViewTree, Server) {
        let db = generate(Scale::mb(0.05)).unwrap();
        let q = sr_rxl::parse(
            "from Supplier $s construct <supplier>\
               <name>$s.name</name>\
               { from Nation $n where $s.nationkey = $n.nationkey \
                 construct <nation>$n.name</nation> }\
               { from PartSupp $ps where $s.suppkey = $ps.suppkey \
                 construct <part>$ps.partkey</part> }\
             </supplier>",
        )
        .unwrap();
        let tree = build(&q, &db).unwrap();
        (tree, Server::new(Arc::new(db)))
    }

    #[test]
    fn fully_partitioned_needs_nothing() {
        let (tree, server) = setup();
        let req =
            required_features(&tree, server.database(), PlanSpec::fully_partitioned()).unwrap();
        assert!(!req.outer_join);
        assert!(!req.union_all);
        assert!(req.satisfied_by(Capabilities::minimal()));
    }

    #[test]
    fn unified_needs_union_and_maybe_outer_join() {
        let (tree, server) = setup();
        // Non-reduced unified: three sibling branches → union; the `*` part
        // branch alone in a union with total siblings → inner join, so test
        // the star-only subtree for the outer-join requirement.
        let req = required_features(
            &tree,
            server.database(),
            PlanSpec {
                edges: EdgeSet::full(&tree),
                reduce: false,
                style: QueryStyle::OuterJoin,
            },
        )
        .unwrap();
        assert!(req.union_all);
        assert!(!req.satisfied_by(Capabilities {
            outer_join: true,
            union_all: false,
        }));
        assert!(req.satisfied_by(Capabilities::full()));
    }

    #[test]
    fn star_only_chain_needs_outer_join_but_no_union() {
        let (_, server) = setup();
        let q = sr_rxl::parse(
            "from Supplier $s construct <supplier>\
             { from PartSupp $ps where $s.suppkey = $ps.suppkey \
               construct <part>$ps.partkey</part> }</supplier>",
        )
        .unwrap();
        let tree = build(&q, server.database()).unwrap();
        let req = required_features(
            &tree,
            server.database(),
            PlanSpec {
                edges: EdgeSet::full(&tree),
                reduce: true,
                style: QueryStyle::OuterJoin,
            },
        )
        .unwrap();
        assert!(req.outer_join, "single * child needs the outer join");
        assert!(!req.union_all, "no sibling branches, no union (§3.4)");
    }

    #[test]
    fn minimal_engine_still_has_permissible_plans() {
        let (tree, server) = setup();
        let plans =
            permissible_plans(&tree, server.database(), Capabilities::minimal(), true).unwrap();
        assert!(!plans.is_empty());
        assert!(
            plans.contains(&EdgeSet::empty()),
            "fully partitioned always works"
        );
        // And every permissible plan really avoids the constructs.
        for edges in &plans {
            let spec = PlanSpec {
                edges: *edges,
                reduce: true,
                style: QueryStyle::OuterJoin,
            };
            let req = required_features(&tree, server.database(), spec).unwrap();
            assert!(!req.outer_join && !req.union_all);
        }
    }

    #[test]
    fn full_engine_permits_everything() {
        let (tree, server) = setup();
        let plans =
            permissible_plans(&tree, server.database(), Capabilities::full(), true).unwrap();
        assert_eq!(plans.len(), 1 << tree.edge_count());
    }

    #[test]
    fn reduction_enlarges_the_permissible_space() {
        // Merging 1-edges removes union branches, so a no-union engine
        // permits more plans with reduction than without.
        let (tree, server) = setup();
        let caps = Capabilities {
            outer_join: true,
            union_all: false,
        };
        let with = permissible_plans(&tree, server.database(), caps, true)
            .unwrap()
            .len();
        let without = permissible_plans(&tree, server.database(), caps, false)
            .unwrap()
            .len();
        assert!(
            with >= without,
            "reduced permissible {with} < non-reduced {without}"
        );
    }
}
