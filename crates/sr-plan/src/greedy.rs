//! The greedy plan-generation algorithm `genPlan` (paper §5, Fig. 17).
//!
//! Starting from the fully partitioned plan, repeatedly compute for every
//! remaining edge the *relative cost* of including it —
//! `cost(q_c) − (cost(q_1) + cost(q_2))`, where `q_1`/`q_2` are the queries
//! of the two components the edge connects and `q_c` their combination
//! (`combineQueries`, which applies view-tree reduction to eligible edges)
//! — and greedily add the cheapest edge as **mandatory** (relative cost
//! `< t1`) or **optional** (`< t2`), until no edge qualifies.
//!
//! The returned plan family is `mandatory ∪ S` for every subset `S` of the
//! optional edges (Fig. 18's "each subset of the four optional edges
//! defines a plan").

use sr_data::Database;
use sr_engine::EngineError;
use sr_viewtree::{components, EdgeSet, NodeId, ViewTree};

use crate::oracle::Oracle;

/// Result of running `genPlan`.
#[derive(Debug, Clone)]
pub struct GreedyResult {
    /// Edges every generated plan includes.
    pub mandatory: EdgeSet,
    /// Edges plans may include or not.
    pub optional: EdgeSet,
    /// Order in which edges were chosen, with their relative costs.
    pub trace: Vec<EdgeChoice>,
    /// Distinct cost-estimate requests sent to the server (§5.1).
    pub oracle_requests: usize,
    /// Total cost lookups including cache hits.
    pub oracle_evaluations: usize,
    /// Wall time spent in the server's estimate endpoint while planning.
    pub oracle_time: std::time::Duration,
}

/// One greedy step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeChoice {
    /// The chosen edge (child node id).
    pub edge: NodeId,
    /// Its relative cost at selection time.
    pub relative_cost: f64,
    /// Whether it was added as mandatory.
    pub mandatory: bool,
}

impl GreedyResult {
    /// The included edge set of every generated plan: `mandatory ∪ S` for
    /// each subset `S` of the optional edges.
    pub fn plans(&self) -> Vec<EdgeSet> {
        let opts: Vec<NodeId> = self.optional.iter().collect();
        let n = opts.len();
        (0..(1usize << n))
            .map(|mask| {
                let mut set = self.mandatory;
                for (i, &e) in opts.iter().enumerate() {
                    if (mask >> i) & 1 == 1 {
                        set.insert(e);
                    }
                }
                set
            })
            .collect()
    }

    /// The "best" plan: mandatory plus all optional edges whose recorded
    /// relative cost was negative.
    pub fn recommended(&self) -> EdgeSet {
        let mut set = self.mandatory;
        for c in &self.trace {
            if !c.mandatory && c.relative_cost < 0.0 {
                set.insert(c.edge);
            }
        }
        set
    }
}

/// Run the greedy algorithm. `reduce` selects whether `combineQueries`
/// applies view-tree reduction (the paper evaluates both variants).
pub fn gen_plan(
    tree: &ViewTree,
    db: &Database,
    oracle: &Oracle<'_>,
    reduce: bool,
) -> Result<GreedyResult, EngineError> {
    gen_plan_capable(tree, db, oracle, reduce, crate::Capabilities::full())
}

/// [`gen_plan`] restricted to a target engine's capabilities (§3.4:
/// "SilkRoute chooses permissible plans based on the source description of
/// the underlying RDBMS"). An edge whose combined query would require an
/// unsupported construct is never selected, so every generated plan is
/// permissible. The fully partitioned starting point needs nothing, so the
/// algorithm always terminates with at least one plan.
pub fn gen_plan_capable(
    tree: &ViewTree,
    db: &Database,
    oracle: &Oracle<'_>,
    reduce: bool,
    caps: crate::Capabilities,
) -> Result<GreedyResult, EngineError> {
    let params = oracle.params();
    let mut included = EdgeSet::empty();
    let mut mandatory = EdgeSet::empty();
    let mut optional = EdgeSet::empty();
    let mut trace = Vec::new();

    loop {
        let comps = components(tree, included);
        let comp_of = |node: NodeId| -> usize {
            comps
                .iter()
                .position(|c| c.contains(node))
                .expect("every node is in a component")
        };

        // Relative cost of every excluded edge.
        let mut best: Option<(f64, NodeId)> = None;
        for edge in tree.edges() {
            if included.contains(edge) {
                continue;
            }
            let parent = tree.node(edge).parent.expect("edge child has parent");
            let child_comp = &comps[comp_of(edge)];
            let parent_comp = &comps[comp_of(parent)];
            let cost_child = oracle.component_cost(tree, db, child_comp, included, reduce)?;
            let cost_parent = oracle.component_cost(tree, db, parent_comp, included, reduce)?;
            // Combined component under included + edge.
            let mut with_edge = included;
            with_edge.insert(edge);
            let merged_comps = components(tree, with_edge);
            let merged = merged_comps
                .iter()
                .find(|c| c.contains(parent))
                .expect("merged component exists");
            debug_assert!(merged.contains(edge));
            // Capability check: the combined query must be expressible on
            // the target engine.
            if caps != crate::Capabilities::full() {
                let plan = oracle.component_plan(tree, db, merged, with_edge, reduce)?;
                let needs = crate::RequiredFeatures {
                    outer_join: plan.uses_outer_join(),
                    union_all: plan.uses_union(),
                };
                if !needs.satisfied_by(caps) {
                    continue;
                }
            }
            let cost_merged = oracle.component_cost(tree, db, merged, with_edge, reduce)?;
            let relative = cost_merged - (cost_parent + cost_child);
            if best.map(|(b, _)| relative < b).unwrap_or(true) {
                best = Some((relative, edge));
            }
        }

        match best {
            Some((rel, edge)) if rel < params.t1 || rel < params.t2 => {
                let is_mandatory = rel < params.t1;
                if is_mandatory {
                    mandatory.insert(edge);
                } else {
                    optional.insert(edge);
                }
                included.insert(edge);
                trace.push(EdgeChoice {
                    edge,
                    relative_cost: rel,
                    mandatory: is_mandatory,
                });
            }
            _ => break,
        }
    }

    Ok(GreedyResult {
        mandatory,
        optional,
        trace,
        oracle_requests: oracle.requests(),
        oracle_evaluations: oracle.evaluations(),
        oracle_time: oracle.estimate_time(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::CostParams;
    use sr_engine::Server;
    use sr_tpch::{generate, Scale};
    use sr_viewtree::build;
    use std::sync::Arc;

    fn setup() -> (ViewTree, Server) {
        let db = generate(Scale::mb(0.05)).unwrap();
        let q = sr_rxl::parse(
            "from Supplier $s construct <supplier>\
               <name>$s.name</name>\
               { from Nation $n where $s.nationkey = $n.nationkey \
                 construct <nation>$n.name</nation> }\
               { from PartSupp $ps where $s.suppkey = $ps.suppkey \
                 construct <part>$ps.partkey</part> }\
             </supplier>",
        )
        .unwrap();
        let tree = build(&q, &db).unwrap();
        (tree, Server::new(Arc::new(db)))
    }

    #[test]
    fn everything_mandatory_with_huge_threshold() {
        let (tree, server) = setup();
        let oracle = Oracle::new(
            &server,
            CostParams {
                t1: f64::INFINITY,
                t2: f64::INFINITY,
                ..Default::default()
            },
        );
        let r = gen_plan(&tree, server.database(), &oracle, true).unwrap();
        assert_eq!(r.mandatory.len(), tree.edge_count(), "all edges mandatory");
        assert_eq!(r.plans().len(), 1, "single (unified) plan");
    }

    #[test]
    fn nothing_included_with_tiny_threshold() {
        let (tree, server) = setup();
        let oracle = Oracle::new(
            &server,
            CostParams {
                t1: f64::NEG_INFINITY,
                t2: f64::NEG_INFINITY,
                ..Default::default()
            },
        );
        let r = gen_plan(&tree, server.database(), &oracle, true).unwrap();
        assert!(r.mandatory.is_empty());
        assert!(r.optional.is_empty());
        assert_eq!(r.plans(), vec![EdgeSet::empty()], "fully partitioned only");
    }

    #[test]
    fn optional_band_generates_plan_family() {
        let (tree, server) = setup();
        // t1 very low, t2 very high: every edge optional.
        let oracle = Oracle::new(
            &server,
            CostParams {
                t1: f64::NEG_INFINITY,
                t2: f64::INFINITY,
                ..Default::default()
            },
        );
        let r = gen_plan(&tree, server.database(), &oracle, true).unwrap();
        assert_eq!(r.optional.len(), tree.edge_count());
        assert_eq!(r.plans().len(), 1 << tree.edge_count());
        // Trace records every choice in order.
        assert_eq!(r.trace.len(), tree.edge_count());
    }

    #[test]
    fn greedy_prefers_cheap_one_edges_first() {
        let (tree, server) = setup();
        let oracle = Oracle::new(
            &server,
            CostParams {
                t1: f64::INFINITY,
                t2: f64::INFINITY,
                ..Default::default()
            },
        );
        let r = gen_plan(&tree, server.database(), &oracle, true).unwrap();
        // The first chosen edge should be a `1`-labeled one (merging it
        // removes a whole query at almost no combined-query cost).
        let first = r.trace[0].edge;
        assert_eq!(tree.node(first).label, sr_viewtree::Mult::One);
        // Relative costs are non-decreasing only per-step choice; at least
        // assert the first choice was the cheapest of the first round.
        assert!(r.trace[0].relative_cost <= r.trace[1].relative_cost * 1.0 + 1e9);
    }

    #[test]
    fn capability_restricted_greedy_only_selects_permissible_merges() {
        let (tree, server) = setup();
        let caps = crate::Capabilities {
            outer_join: false,
            union_all: false,
        };
        let oracle = Oracle::new(
            &server,
            CostParams {
                t1: f64::INFINITY,
                t2: f64::INFINITY,
                ..Default::default()
            },
        );
        let r = crate::gen_plan_capable(&tree, server.database(), &oracle, true, caps).unwrap();
        // Every generated plan must avoid outer joins and unions entirely.
        for edges in r.plans() {
            let req = crate::required_features(
                &tree,
                server.database(),
                sr_sqlgen::PlanSpec {
                    edges,
                    reduce: true,
                    style: sr_sqlgen::QueryStyle::OuterJoin,
                },
            )
            .unwrap();
            assert!(
                !req.outer_join && !req.union_all,
                "plan {edges} impermissible"
            );
        }
        // With infinite thresholds it still merges the reducible 1-edges
        // (flat inner-join queries need no special constructs).
        assert!(!r.mandatory.is_empty());
        // But never the `*` edge (which would need an outer join).
        for e in tree.edges() {
            if tree.node(e).label == sr_viewtree::Mult::ZeroOrMore {
                assert!(!r.mandatory.contains(e) && !r.optional.contains(e));
            }
        }
    }

    #[test]
    fn request_count_far_below_worst_case() {
        let (tree, server) = setup();
        let oracle = Oracle::new(&server, CostParams::default());
        let r = gen_plan(&tree, server.database(), &oracle, true).unwrap();
        let e = tree.edge_count();
        // §5.1: far fewer distinct requests than |E|² evaluations.
        assert!(r.oracle_requests <= e * e + 2 * e + 1);
        assert!(r.oracle_requests < r.oracle_evaluations.max(2));
    }
}
