//! Learned re-costing: re-run `genPlan` when the estimates it planned on
//! turn out to be wrong.
//!
//! PR 3 built the measurement half of the feedback loop
//! ([`Oracle::record_actual`], the `oracle.qerror` histogram); this module
//! closes it. A [`Recoster`] owns the shared [`ActualStore`] plus per-view
//! plan state: each view remembers the component-query cardinalities its
//! current plan was costed with, accumulates `log2(q_error)` as actuals
//! arrive, and re-plans — this time through an actuals-blended oracle —
//! once the accumulated error crosses a threshold. Repeated
//! materializations can therefore *switch plan partitions* as the learned
//! cardinalities diverge from the catalog's static stats (§5: the greedy
//! planner is only as good as its estimates).

use std::collections::HashMap;
use std::sync::Mutex;

use sr_engine::{EngineError, Server};
use sr_sqlgen::{generate_queries, PlanSpec, QueryStyle};
use sr_viewtree::ViewTree;

use crate::greedy::gen_plan;
use crate::oracle::{ActualStore, CostParams, Oracle};

/// Tuning for a [`Recoster`].
#[derive(Debug, Clone, Copy)]
pub struct RecostConfig {
    /// Cost-model parameters handed to every `genPlan` run.
    pub params: CostParams,
    /// Accumulated `log2(q_error)` across a view's component queries that
    /// triggers a re-plan. The default (2.0) re-plans once observations
    /// amount to one component being off by 4×, or two by 2× each.
    pub threshold: f64,
    /// Apply view-tree reduction when planning.
    pub reduce: bool,
}

impl Default for RecostConfig {
    fn default() -> Self {
        RecostConfig {
            params: CostParams::default(),
            threshold: 2.0,
            reduce: true,
        }
    }
}

/// Per-view feedback state.
#[derive(Debug, Default)]
struct ViewState {
    /// The spec the view currently runs under.
    spec: Option<PlanSpec>,
    /// Blended cardinality per (normalized) component SQL at plan time.
    planned_est: HashMap<String, f64>,
    /// Accumulated `log2(q_error)` since the last plan.
    accum: f64,
    /// Times this view has been (re-)planned.
    plans: u64,
}

/// The server-side re-costing driver: hand out a plan per view, feed back
/// actuals, re-plan when the accumulated error says the plan was built on
/// fiction. Thread-safe; one instance is shared across connections.
pub struct Recoster {
    cfg: RecostConfig,
    actuals: ActualStore,
    views: Mutex<HashMap<String, ViewState>>,
}

impl Recoster {
    /// A recoster with its own empty [`ActualStore`].
    pub fn new(cfg: RecostConfig) -> Recoster {
        Recoster {
            cfg,
            actuals: ActualStore::new(),
            views: Mutex::new(HashMap::new()),
        }
    }

    /// The shared learned-actuals store.
    pub fn actuals(&self) -> &ActualStore {
        &self.actuals
    }

    /// Times `name` has been planned (1 = initial plan only).
    pub fn plan_count(&self, name: &str) -> u64 {
        self.views
            .lock()
            .unwrap()
            .get(name)
            .map(|v| v.plans)
            .unwrap_or(0)
    }

    /// Forget all learned state (the database changed under us).
    pub fn reset(&self) {
        self.actuals.clear();
        self.views.lock().unwrap().clear();
    }

    /// The plan for view `name`: the cached spec while its estimates hold,
    /// a fresh `genPlan` run — through an actuals-blended oracle — on first
    /// use or once accumulated Q-error crosses the threshold. Re-plans bump
    /// the server registry's `oracle.recost` counter.
    pub fn plan(
        &self,
        name: &str,
        tree: &ViewTree,
        server: &Server,
    ) -> Result<PlanSpec, EngineError> {
        {
            let views = self.views.lock().unwrap();
            if let Some(state) = views.get(name) {
                if let Some(spec) = state.spec {
                    if state.accum < self.cfg.threshold {
                        return Ok(spec);
                    }
                }
            }
        }
        // Plan outside the lock: genPlan runs estimate queries.
        let db = server.database();
        let oracle = Oracle::new(server, self.cfg.params).with_actuals(self.actuals.clone());
        let greedy = gen_plan(tree, db, &oracle, self.cfg.reduce)?;
        let spec = PlanSpec {
            edges: greedy.recommended(),
            reduce: self.cfg.reduce,
            style: QueryStyle::OuterJoin,
        };
        // Remember what the chosen plan's component queries were costed at,
        // so observe() can measure drift against *these* numbers.
        let mut planned_est = HashMap::new();
        for q in generate_queries(tree, db, spec)? {
            let est = oracle.estimate_sql(&q.sql)?;
            planned_est.insert(ActualStore::normalize(&q.sql), est.cardinality);
        }
        let mut views = self.views.lock().unwrap();
        let state = views.entry(name.to_string()).or_default();
        if state.plans > 0 {
            server.metrics().counter("oracle.recost").inc();
        }
        state.spec = Some(spec);
        state.planned_est = planned_est;
        state.accum = 0.0;
        state.plans += 1;
        Ok(spec)
    }

    /// Feed back the actual row count of one component query of `name`.
    /// Records it into the shared store and, when the SQL is one the
    /// current plan was costed on, accumulates its `log2(q_error)` toward
    /// the re-plan threshold. Returns the accumulated error.
    pub fn observe(&self, name: &str, sql: &str, actual_rows: u64) -> f64 {
        self.actuals.record(sql, actual_rows);
        let mut views = self.views.lock().unwrap();
        let Some(state) = views.get_mut(name) else {
            return 0.0;
        };
        if let Some(&est) = state.planned_est.get(&ActualStore::normalize(sql)) {
            let q = sr_engine::q_error(est, actual_rows as f64);
            state.accum += q.log2();
        }
        state.accum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_tpch::{generate, Scale};
    use sr_viewtree::build;
    use std::sync::Arc;

    fn setup() -> (ViewTree, Server) {
        let db = generate(Scale::mb(0.05)).unwrap();
        let q = sr_rxl::parse(
            "from Supplier $s construct <supplier>\
               <name>$s.name</name>\
               { from PartSupp $ps where $s.suppkey = $ps.suppkey \
                 construct <part>$ps.partkey</part> }\
             </supplier>",
        )
        .unwrap();
        let tree = build(&q, &db).unwrap();
        (tree, Server::new(Arc::new(db)))
    }

    #[test]
    fn plan_is_cached_until_threshold() {
        let (tree, server) = setup();
        let rc = Recoster::new(RecostConfig::default());
        let s1 = rc.plan("v", &tree, &server).unwrap();
        let s2 = rc.plan("v", &tree, &server).unwrap();
        assert_eq!(s1.edges, s2.edges);
        assert_eq!(rc.plan_count("v"), 1, "second call served from cache");
        assert_eq!(server.metrics().counter("oracle.recost").get(), 0);
    }

    #[test]
    fn accumulated_qerror_triggers_a_replan() {
        let (tree, server) = setup();
        let rc = Recoster::new(RecostConfig::default());
        let spec = rc.plan("v", &tree, &server).unwrap();
        let db = server.database();
        let queries = generate_queries(&tree, db, spec).unwrap();
        // Report every component wildly off (64× its planned estimate):
        // log2(64) = 6 per component clears the 2.0 threshold at once.
        for q in &queries {
            let est = Oracle::new(&server, CostParams::default())
                .estimate_sql(&q.sql)
                .unwrap();
            let accum = rc.observe("v", &q.sql, (est.cardinality * 64.0).ceil() as u64);
            assert!(accum > 0.0);
        }
        rc.plan("v", &tree, &server).unwrap();
        assert_eq!(rc.plan_count("v"), 2, "threshold crossed → re-planned");
        assert_eq!(server.metrics().counter("oracle.recost").get(), 1);
        // The re-plan resets the accumulator: planning again is a no-op.
        rc.plan("v", &tree, &server).unwrap();
        assert_eq!(rc.plan_count("v"), 2);
    }

    #[test]
    fn genplan_switches_partition_after_learned_actuals() {
        // The re-costing acceptance case: with static stats the recommended
        // plan includes the 1-labeled <name> edge; after learning that the
        // combined component returns vastly more rows than estimated, the
        // greedy planner backs off to a more partitioned plan. Asserted via
        // the plan fingerprint (edge bits), not timing.
        let (tree, server) = setup();
        let rc = Recoster::new(RecostConfig {
            // Paper-default thresholds, a tiny re-plan trigger.
            threshold: 0.5,
            ..RecostConfig::default()
        });
        let before = rc.plan("v", &tree, &server).unwrap();
        assert!(
            !before.edges.is_empty(),
            "static stats merge at least one edge: {}",
            before.edges.bits()
        );
        // Poison every merged component's estimate: claim each returned
        // ~100000× its planned cardinality. Blended costing now prices the
        // merged queries out of the t2 band.
        let db = server.database();
        for q in generate_queries(&tree, db, before).unwrap() {
            rc.observe("v", &q.sql, 50_000_000);
        }
        let after = rc.plan("v", &tree, &server).unwrap();
        assert_eq!(rc.plan_count("v"), 2);
        assert_ne!(
            after.edges.bits(),
            before.edges.bits(),
            "learned actuals must flip the plan partition"
        );
        let dropped = before.edges.iter().any(|e| !after.edges.contains(e));
        assert!(
            dropped,
            "a poisoned merge must be dropped: {} -> {}",
            before.edges, after.edges
        );
    }

    #[test]
    fn reset_forgets_learned_state() {
        let (tree, server) = setup();
        let rc = Recoster::new(RecostConfig::default());
        rc.plan("v", &tree, &server).unwrap();
        rc.observe("v", "SELECT 1", 10);
        rc.reset();
        assert!(rc.actuals().is_empty());
        assert_eq!(rc.plan_count("v"), 0);
    }
}
