//! The cost oracle (paper §5).
//!
//! "The only reliable source of query costs is the target RDBMS. … The
//! RDBMS serves as an oracle, providing the values for the functions
//! `evaluation_cost` and `cardinality`."
//!
//! The oracle sends each candidate component query to the server's
//! estimate endpoint **as SQL text** and combines the answers with the
//! paper's linear model `cost(q, a, b) = a·evaluation_cost(q) +
//! b·data_size(q)`. Requests are cached by SQL string and counted — §5.1
//! reports the number of estimate requests (22/25 for the test queries vs.
//! the 81 worst case), which `bench/fig18` reproduces from this counter.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sr_data::Database;
use sr_engine::{EngineError, Estimate, Server};
use sr_sqlgen::{outer_join_plan, QueryStyle};
use sr_viewtree::{reduce_component, Component, EdgeSet, ViewTree};

/// Learned actual cardinalities, keyed by whitespace-normalized SQL.
///
/// The store outlives any single [`Oracle`] (oracles borrow a server and
/// are rebuilt per planning round), so it is shared: clones see the same
/// map. Recorded counts are clamped to ≥ 1 row — the Q-error floor — so a
/// zero-row observation can never divide a later estimate to zero.
#[derive(Debug, Clone, Default)]
pub struct ActualStore {
    inner: Arc<Mutex<HashMap<String, u64>>>,
}

impl ActualStore {
    /// An empty store.
    pub fn new() -> ActualStore {
        ActualStore::default()
    }

    /// The keying normalization: collapse whitespace runs and trim, so the
    /// same query re-rendered with different spacing still hits.
    pub fn normalize(sql: &str) -> String {
        sql.split_whitespace().collect::<Vec<_>>().join(" ")
    }

    /// Record an observed row count for a SQL query (clamped to ≥ 1).
    pub fn record(&self, sql: &str, rows: u64) {
        self.inner
            .lock()
            .unwrap()
            .insert(Self::normalize(sql), rows.max(1));
    }

    /// The recorded actual for a SQL query, if any.
    pub fn get(&self, sql: &str) -> Option<u64> {
        self.inner
            .lock()
            .unwrap()
            .get(&Self::normalize(sql))
            .copied()
    }

    /// Number of distinct queries with recorded actuals.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// `true` iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forget everything (the database changed under us).
    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
    }
}

/// Cost-model parameters: coefficients and greedy thresholds.
///
/// The paper used `a = 100`, `b = 1`, `t1 = -60000`, `t2 = 6000` for all
/// experiments and notes the values depend on the database environment, not
/// the query. [`CostParams::default`] carries the paper's values; the
/// calibrated values for our engine are produced by
/// `silkroute::config::calibrated_params`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Weight of `evaluation_cost`.
    pub a: f64,
    /// Weight of `data_size`.
    pub b: f64,
    /// Maximum relative cost for a **mandatory** edge.
    pub t1: f64,
    /// Maximum relative cost for an **optional** edge (`t1 < t2`).
    pub t2: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            a: 100.0,
            b: 1.0,
            t1: -60_000.0,
            t2: 6_000.0,
        }
    }
}

/// A counting, caching cost oracle backed by the engine server.
///
/// Counts are mirrored into the server's metrics registry (`sr-obs`) as
/// `oracle.evaluations` / `oracle.requests` / `oracle.cache_hits`, so a
/// pipeline-wide metrics snapshot shows planning cost next to execution
/// cost.
pub struct Oracle<'a> {
    server: &'a Server,
    params: CostParams,
    cache: RefCell<HashMap<String, Estimate>>,
    requests: RefCell<usize>,
    evaluations: RefCell<usize>,
    estimate_time: RefCell<Duration>,
    /// Worst observed `(sql, q_error)` reported via
    /// [`Oracle::record_actual`].
    worst: RefCell<Option<(String, f64)>>,
    /// Learned actuals to blend over static stats, when attached.
    actuals: Option<ActualStore>,
}

impl<'a> Oracle<'a> {
    /// Create an oracle over a server.
    pub fn new(server: &'a Server, params: CostParams) -> Self {
        Oracle {
            server,
            params,
            cache: RefCell::new(HashMap::new()),
            requests: RefCell::new(0),
            evaluations: RefCell::new(0),
            estimate_time: RefCell::new(Duration::ZERO),
            worst: RefCell::new(None),
            actuals: None,
        }
    }

    /// Attach a learned-actuals store: [`Oracle::estimate_sql`] then blends
    /// recorded actual cardinalities over the server's static stats (exact
    /// hit → actual; miss → static), and [`Oracle::record_actual`] persists
    /// observations into the store for later planning rounds.
    pub fn with_actuals(mut self, actuals: ActualStore) -> Self {
        self.actuals = Some(actuals);
        self
    }

    /// The attached learned-actuals store, if any.
    pub fn actuals(&self) -> Option<&ActualStore> {
        self.actuals.as_ref()
    }

    /// The model parameters.
    pub fn params(&self) -> CostParams {
        self.params
    }

    /// Number of *distinct* estimate requests sent to the server.
    pub fn requests(&self) -> usize {
        *self.requests.borrow()
    }

    /// Number of cost lookups including cache hits.
    pub fn evaluations(&self) -> usize {
        *self.evaluations.borrow()
    }

    /// Wall time spent inside the server's estimate endpoint (cache misses
    /// only — hits are answered locally).
    pub fn estimate_time(&self) -> Duration {
        *self.estimate_time.borrow()
    }

    /// Estimate for a SQL string (cached). With an attached
    /// [`ActualStore`], an exact (normalized) hit replaces the static
    /// cardinality with the recorded actual; the cache keeps the *static*
    /// estimate so Q-error accounting keeps measuring the server's stats,
    /// not our own corrections.
    pub fn estimate_sql(&self, sql: &str) -> Result<Estimate, EngineError> {
        *self.evaluations.borrow_mut() += 1;
        let metrics = self.server.metrics();
        metrics.counter("oracle.evaluations").inc();
        if let Some(e) = self.cache.borrow().get(sql) {
            metrics.counter("oracle.cache_hits").inc();
            return Ok(self.blend(sql, e.clone()));
        }
        *self.requests.borrow_mut() += 1;
        metrics.counter("oracle.requests").inc();
        let start = Instant::now();
        let e = self.server.estimate_sql(sql)?;
        *self.estimate_time.borrow_mut() += start.elapsed();
        self.cache.borrow_mut().insert(sql.to_string(), e.clone());
        Ok(self.blend(sql, e))
    }

    /// Overlay a recorded actual onto a static estimate. The evaluation
    /// cost is scaled by the actual/static output ratio — a crude proxy
    /// (eval cost also covers input rows), but it moves the linear model
    /// in the right direction for the queries we have truth for.
    fn blend(&self, sql: &str, e: Estimate) -> Estimate {
        let Some(actual) = self.actuals.as_ref().and_then(|s| s.get(sql)) else {
            return e;
        };
        self.server.metrics().counter("oracle.actual_hits").inc();
        let actual = actual as f64;
        let ratio = actual / e.cardinality.max(1.0);
        Estimate {
            cardinality: actual,
            eval_cost: e.eval_cost * ratio,
            columns: e.columns,
        }
    }

    /// Close the feedback loop on a cached estimate: once a query the
    /// oracle costed has actually run, report its real row count. Returns
    /// the Q-error of the cached cardinality estimate (`None` if this SQL
    /// was never estimated), records it into the server registry's
    /// `oracle.qerror` histogram (×1000 fixed point), and tracks the worst
    /// offender for [`Oracle::worst_qerror`]. This is the §5.1 accuracy
    /// accounting: the greedy planner is only as good as these estimates,
    /// and the histogram shows how far off they run in practice (Fig. 18).
    pub fn record_actual(&self, sql: &str, actual_rows: u64) -> Option<f64> {
        // Persist first: an actual is worth keeping even for SQL this
        // oracle instance never estimated (a later planning round will).
        if let Some(store) = &self.actuals {
            store.record(sql, actual_rows);
        }
        let est = self.cache.borrow().get(sql)?.cardinality;
        let q = sr_engine::q_error(est, actual_rows as f64);
        self.server
            .metrics()
            .histogram("oracle.qerror")
            .record((q * 1000.0).round() as u64);
        let mut worst = self.worst.borrow_mut();
        if worst.as_ref().is_none_or(|(_, w)| q > *w) {
            *worst = Some((sql.to_string(), q));
        }
        Some(q)
    }

    /// The worst `(sql, q_error)` seen by [`Oracle::record_actual`].
    pub fn worst_qerror(&self) -> Option<(String, f64)> {
        self.worst.borrow().clone()
    }

    /// Per-shard cardinality estimates for a component query split into `k`
    /// key-range shards (the same catalog stats that answer `cardinality`
    /// also pick the range boundaries, so the estimates show how even the
    /// split is *predicted* to be before anything executes). Returns `None`
    /// when the query is unshardable — no usable range key, too few
    /// distinct values, or a stats-less source. Each shard estimate goes
    /// through the same cache and counters as any other oracle request.
    pub fn shard_estimates(
        &self,
        sql: &str,
        k: usize,
    ) -> Result<Option<Vec<(String, Estimate)>>, EngineError> {
        let Some(shards) = self.server.shard_sql(sql, k)? else {
            return Ok(None);
        };
        let mut out = Vec::with_capacity(shards.len());
        for shard_sql in shards {
            let est = self.estimate_sql(&shard_sql)?;
            out.push((shard_sql, est));
        }
        Ok(Some(out))
    }

    /// Combined cost of a SQL query under the linear model.
    pub fn cost_sql(&self, sql: &str) -> Result<f64, EngineError> {
        let e = self.estimate_sql(sql)?;
        Ok(e.combined_cost(self.params.a, self.params.b))
    }

    /// The outer-join plan of one component under an edge set (the
    /// structure SilkRoute generates while planning).
    pub fn component_plan(
        &self,
        tree: &ViewTree,
        db: &Database,
        component: &Component,
        edges: EdgeSet,
        reduce: bool,
    ) -> Result<sr_engine::Plan, EngineError> {
        let rc = reduce_component(tree, component, edges, reduce);
        outer_join_plan(tree, &rc, db)
    }

    /// Combined cost of one component under an edge set (outer-join style).
    pub fn component_cost(
        &self,
        tree: &ViewTree,
        db: &Database,
        component: &Component,
        edges: EdgeSet,
        reduce: bool,
    ) -> Result<f64, EngineError> {
        let plan = self.component_plan(tree, db, component, edges, reduce)?;
        let sql = sr_engine::sql::to_sql(&plan, db)?;
        self.cost_sql(&sql)
    }

    /// Total combined cost of a full plan: the sum over its components.
    pub fn plan_cost(
        &self,
        tree: &ViewTree,
        db: &Database,
        edges: EdgeSet,
        reduce: bool,
        style: QueryStyle,
    ) -> Result<f64, EngineError> {
        let _ = style; // planning always costs the outer-join structure
        let comps = sr_viewtree::components(tree, edges);
        let mut total = 0.0;
        for c in &comps {
            total += self.component_cost(tree, db, c, edges, reduce)?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_tpch::{generate, Scale};
    use sr_viewtree::build;
    use std::sync::Arc;

    fn setup() -> (ViewTree, Server) {
        let db = generate(Scale::mb(0.05)).unwrap();
        let q = sr_rxl::parse(
            "from Supplier $s construct <supplier>\
               <name>$s.name</name>\
               { from PartSupp $ps where $s.suppkey = $ps.suppkey \
                 construct <part>$ps.partkey</part> }\
             </supplier>",
        )
        .unwrap();
        let tree = build(&q, &db).unwrap();
        (tree, Server::new(Arc::new(db)))
    }

    #[test]
    fn requests_are_cached() {
        let (tree, server) = setup();
        let oracle = Oracle::new(&server, CostParams::default());
        let db = server.database();
        let full = EdgeSet::full(&tree);
        let c1 = oracle
            .plan_cost(&tree, db, full, true, QueryStyle::OuterJoin)
            .unwrap();
        let r1 = oracle.requests();
        let c2 = oracle
            .plan_cost(&tree, db, full, true, QueryStyle::OuterJoin)
            .unwrap();
        assert_eq!(c1, c2);
        assert_eq!(oracle.requests(), r1, "second evaluation fully cached");
        assert!(oracle.evaluations() > r1);
    }

    #[test]
    fn costs_are_positive_and_monotone_in_b() {
        let (tree, server) = setup();
        let db = server.database();
        let cheap = Oracle::new(
            &server,
            CostParams {
                a: 1.0,
                b: 0.0,
                ..Default::default()
            },
        );
        let heavy = Oracle::new(
            &server,
            CostParams {
                a: 1.0,
                b: 10.0,
                ..Default::default()
            },
        );
        let full = EdgeSet::full(&tree);
        let c1 = cheap
            .plan_cost(&tree, db, full, true, QueryStyle::OuterJoin)
            .unwrap();
        let c2 = heavy
            .plan_cost(&tree, db, full, true, QueryStyle::OuterJoin)
            .unwrap();
        assert!(c1 > 0.0);
        assert!(c2 > c1, "adding data-size weight increases cost");
    }

    #[test]
    fn record_actual_tracks_qerror_and_worst_offender() {
        let (_, server) = setup();
        let oracle = Oracle::new(&server, CostParams::default());
        let sql = "SELECT s.suppkey AS k FROM Supplier s";
        let est = oracle.estimate_sql(sql).unwrap();
        // Unknown SQL was never estimated: no feedback possible.
        assert!(oracle.record_actual("SELECT 1", 5).is_none());
        assert!(oracle.worst_qerror().is_none());
        // Perfectly estimated: q-error 1.
        let q = oracle
            .record_actual(sql, est.cardinality.round() as u64)
            .unwrap();
        assert!((q - 1.0).abs() < 0.01, "q = {q}");
        // A 10x miss becomes the worst offender.
        let q10 = oracle
            .record_actual(sql, (est.cardinality * 10.0).round() as u64)
            .unwrap();
        assert!(q10 > 9.0 && q10 < 11.0, "q10 = {q10}");
        let (wsql, wq) = oracle.worst_qerror().unwrap();
        assert_eq!(wsql, sql);
        assert_eq!(wq, q10);
        let snap = server.metrics().snapshot();
        let h = snap.histogram("oracle.qerror").expect("histogram recorded");
        assert_eq!(h.count, 2);
        assert!(h.min >= 1000, "×1000 fixed point, q >= 1");
    }

    #[test]
    fn shard_estimates_cover_the_unsharded_cardinality() {
        let (_, server) = setup();
        let oracle = Oracle::new(&server, CostParams::default());
        let sql = "SELECT s.suppkey AS k, s.name AS name FROM Supplier s ORDER BY k";
        let whole = oracle.estimate_sql(sql).unwrap();
        let shards = oracle
            .shard_estimates(sql, 2)
            .unwrap()
            .expect("keyed ORDER BY query is shardable");
        assert_eq!(shards.len(), 2);
        let sum: f64 = shards.iter().map(|(_, e)| e.cardinality).sum();
        // Range shards partition the key space, so their estimated
        // cardinalities should roughly reassemble the whole query's.
        assert!(
            sum >= whole.cardinality * 0.5 && sum <= whole.cardinality * 2.0,
            "sum {sum} vs whole {}",
            whole.cardinality
        );
        // Shard estimates are ordinary oracle requests: cached + counted.
        assert_eq!(oracle.requests(), 3);
        oracle.shard_estimates(sql, 2).unwrap().unwrap();
        assert_eq!(oracle.requests(), 3, "second round fully cached");
        // An un-keyed ordering cannot be range-sharded.
        assert!(oracle
            .shard_estimates("SELECT s.name AS name FROM Supplier s ORDER BY name", 2)
            .unwrap()
            .is_none());
    }

    #[test]
    fn qerror_zero_cases_stay_finite() {
        // The standard Q-error convention clamps both sides to ≥ 1 row, so
        // zero/zero, zero/nonzero, and huge-ratio cases all stay finite.
        assert_eq!(sr_engine::q_error(0.0, 0.0), 1.0);
        let q = sr_engine::q_error(0.0, 1_000.0);
        assert!(q.is_finite() && (q - 1_000.0).abs() < 1e-9, "q = {q}");
        let q = sr_engine::q_error(1e18, 0.0);
        assert!(q.is_finite() && q >= 1e17, "q = {q}");
    }

    #[test]
    fn record_actual_zero_rows_does_not_poison_worst() {
        let (_, server) = setup();
        let actuals = ActualStore::new();
        let oracle = Oracle::new(&server, CostParams::default()).with_actuals(actuals.clone());
        let sql = "SELECT s.suppkey AS k FROM Supplier s";
        oracle.estimate_sql(sql).unwrap();
        let q = oracle.record_actual(sql, 0).unwrap();
        assert!(q.is_finite() && q >= 1.0, "q = {q}");
        let (_, wq) = oracle.worst_qerror().unwrap();
        assert!(wq.is_finite());
        // The persisted actual is clamped to the 1-row floor, so a later
        // blend can never zero out an estimate.
        assert_eq!(actuals.get(sql), Some(1));
        // A huge-ratio observation stays finite too.
        let q = oracle.record_actual(sql, u64::MAX).unwrap();
        assert!(q.is_finite(), "q = {q}");
        let snap = server.metrics().snapshot();
        let h = snap.histogram("oracle.qerror").expect("recorded");
        assert_eq!(h.count, 2);
    }

    #[test]
    fn estimate_blends_recorded_actuals_over_static_stats() {
        let (_, server) = setup();
        let actuals = ActualStore::new();
        let oracle = Oracle::new(&server, CostParams::default()).with_actuals(actuals.clone());
        let sql = "SELECT s.suppkey AS k FROM Supplier s";
        let static_est = oracle.estimate_sql(sql).unwrap();
        assert!(actuals.get(sql).is_none(), "miss → static stats");
        let actual = (static_est.cardinality * 5.0).round() as u64;
        oracle.record_actual(sql, actual).unwrap();
        let blended = oracle.estimate_sql(sql).unwrap();
        assert_eq!(blended.cardinality, actual as f64, "exact hit → actual");
        assert!(blended.eval_cost > static_est.eval_cost);
        // Whitespace variants key to the same record…
        let spaced = "SELECT   s.suppkey AS k\n FROM Supplier s";
        assert_eq!(actuals.get(spaced), Some(actual));
        // …and a fresh oracle over the shared store sees it immediately.
        let o2 = Oracle::new(&server, CostParams::default()).with_actuals(actuals.clone());
        assert_eq!(o2.estimate_sql(sql).unwrap().cardinality, actual as f64);
        assert!(server.metrics().counter("oracle.actual_hits").get() >= 2);
        actuals.clear();
        assert!(actuals.is_empty());
        let back = oracle.estimate_sql(sql).unwrap();
        assert_eq!(back.cardinality, static_est.cardinality);
    }

    #[test]
    fn default_params_match_paper() {
        let p = CostParams::default();
        assert_eq!(p.a, 100.0);
        assert_eq!(p.b, 1.0);
        assert_eq!(p.t1, -60_000.0);
        assert_eq!(p.t2, 6_000.0);
    }
}
