//! Property test: the pretty-printer and parser are inverse on arbitrary
//! RXL ASTs — `parse(pretty(q)) == q`.

use proptest::prelude::*;

use sr_rxl::{
    parse, pretty, Binding, Block, Condition, Content, Element, Operand, RxlCmp, RxlQuery,
    SkolemTerm,
};

fn ident() -> impl Strategy<Value = String> + Clone {
    "[a-z][a-z0-9_]{0,5}".prop_map(|s| s)
}

fn operand() -> impl Strategy<Value = Operand> + Clone {
    prop_oneof![
        (ident(), ident()).prop_map(|(v, f)| Operand::Field { var: v, field: f }),
        any::<i32>().prop_map(|i| Operand::Int(i as i64)),
        // Exact binary fractions print finitely and re-parse exactly.
        (0i64..4000).prop_map(|n| Operand::Float(n as f64 / 8.0)),
        // No backslashes: the lexer's only escape is \" .
        "[ -!#-\\[\\]-~]{0,8}".prop_map(Operand::Str),
    ]
}

fn cmp() -> impl Strategy<Value = RxlCmp> + Clone {
    prop_oneof![
        Just(RxlCmp::Eq),
        Just(RxlCmp::Ne),
        Just(RxlCmp::Lt),
        Just(RxlCmp::Le),
        Just(RxlCmp::Gt),
        Just(RxlCmp::Ge),
    ]
}

fn condition() -> impl Strategy<Value = Condition> + Clone {
    (operand(), cmp(), operand()).prop_map(|(left, op, right)| Condition { left, op, right })
}

fn binding() -> impl Strategy<Value = Binding> + Clone {
    (ident(), ident()).prop_map(|(t, v)| Binding {
        table: {
            let mut t = t;
            if let Some(c) = t.get_mut(0..1) {
                c.make_ascii_uppercase();
            }
            t
        },
        var: v,
    })
}

fn skolem() -> impl Strategy<Value = Option<SkolemTerm>> {
    proptest::option::of(
        (ident(), proptest::collection::vec((ident(), ident()), 0..3)).prop_map(|(name, args)| {
            SkolemTerm {
                name,
                args: args
                    .into_iter()
                    .map(|(v, f)| Operand::Field { var: v, field: f })
                    .collect(),
            }
        }),
    )
}

fn element(depth: u32) -> BoxedStrategy<Element> {
    let text = operand().prop_map(Content::Text);
    if depth == 0 {
        (ident(), skolem(), proptest::collection::vec(text, 0..3))
            .prop_map(|(tag, skolem, content)| Element {
                tag,
                skolem,
                content,
            })
            .boxed()
    } else {
        let content = prop_oneof![
            3 => operand().prop_map(Content::Text),
            2 => element(depth - 1).prop_map(Content::Element),
            2 => block(depth - 1).prop_map(Content::Block),
        ];
        (ident(), skolem(), proptest::collection::vec(content, 0..4))
            .prop_map(|(tag, skolem, content)| Element {
                tag,
                skolem,
                content,
            })
            .boxed()
    }
}

fn block(depth: u32) -> BoxedStrategy<Block> {
    (
        proptest::collection::vec(binding(), 0..3),
        proptest::collection::vec(condition(), 0..3),
        element(depth),
    )
        .prop_map(|(bindings, mut conditions, element)| {
            // `where` without `from` is unusual but syntactically legal;
            // keep conditions only when something is bound, to mirror the
            // printer's canonical form.
            if bindings.is_empty() {
                conditions.clear();
            }
            Block {
                bindings,
                conditions,
                element,
            }
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_pretty_roundtrip(root in block(3)) {
        let q = RxlQuery { root };
        let printed = pretty(&q);
        let back = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed ({e}) for:\n{printed}"));
        prop_assert_eq!(q, back, "printed form:\n{}", printed);
    }

    #[test]
    fn pretty_is_stable(root in block(2)) {
        // pretty ∘ parse ∘ pretty == pretty (canonical form is a fixpoint).
        let q = RxlQuery { root };
        let once = pretty(&q);
        let twice = pretty(&parse(&once).unwrap());
        prop_assert_eq!(once, twice);
    }
}
