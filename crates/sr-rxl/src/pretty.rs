//! Pretty-printer for RXL queries.
//!
//! `parse(pretty(q)) == q` — the printer produces canonical source that the
//! parser accepts, which the property tests rely on.

use std::fmt::Write as _;

use crate::ast::{Block, Content, Element, RxlQuery};

/// Render a query as canonical RXL source.
pub fn pretty(query: &RxlQuery) -> String {
    let mut out = String::new();
    print_block(&query.root, 0, &mut out);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_block(b: &Block, depth: usize, out: &mut String) {
    if !b.bindings.is_empty() {
        indent(out, depth);
        out.push_str("from ");
        for (i, binding) in b.bindings.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{} ${}", binding.table, binding.var);
        }
        out.push('\n');
    }
    if !b.conditions.is_empty() {
        indent(out, depth);
        out.push_str("where ");
        for (i, c) in b.conditions.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{c}");
        }
        out.push('\n');
    }
    indent(out, depth);
    out.push_str("construct\n");
    print_element(&b.element, depth + 1, out);
}

fn print_element(e: &Element, depth: usize, out: &mut String) {
    indent(out, depth);
    let _ = write!(out, "<{}", e.tag);
    if let Some(sk) = &e.skolem {
        let _ = write!(out, " ID={sk}");
    }
    if e.content.is_empty() {
        out.push_str("/>\n");
        return;
    }
    out.push_str(">\n");
    for c in &e.content {
        match c {
            Content::Element(child) => print_element(child, depth + 1, out),
            Content::Text(op) => {
                indent(out, depth + 1);
                let _ = writeln!(out, "{op}");
            }
            Content::Block(b) => {
                indent(out, depth + 1);
                out.push_str("{\n");
                print_block(b, depth + 2, out);
                indent(out, depth + 1);
                out.push_str("}\n");
            }
        }
    }
    indent(out, depth);
    let _ = writeln!(out, "</{}>", e.tag);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SAMPLE: &str = r#"
        from Supplier $s
        where $s.suppkey >= 1
        construct
          <supplier ID=S1($s.suppkey)>
            <name>$s.name</name>
            { from Nation $n
              where $s.nationkey = $n.nationkey
              construct <nation>$n.name</nation> }
            <empty/>
          </supplier>
    "#;

    #[test]
    fn roundtrip_parse_pretty_parse() {
        let q1 = parse(SAMPLE).unwrap();
        let printed = pretty(&q1);
        let q2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed ({e}) for:\n{printed}"));
        assert_eq!(q1, q2);
    }

    #[test]
    fn pretty_contains_structure() {
        let q = parse(SAMPLE).unwrap();
        let p = pretty(&q);
        assert!(p.contains("from Supplier $s"));
        assert!(p.contains("where $s.suppkey >= 1"));
        assert!(p.contains("ID=S1($s.suppkey)"));
        assert!(p.contains("<empty/>"));
    }

    #[test]
    fn string_literals_roundtrip() {
        let q1 = parse("construct <x>\"a \\\"quoted\\\" word\"</x>").unwrap();
        let q2 = parse(&pretty(&q1)).unwrap();
        assert_eq!(q1, q2);
    }
}
