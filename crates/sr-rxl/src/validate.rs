//! Semantic validation of RXL queries against a database catalog.
//!
//! Checks performed:
//!
//! * every `from` table exists in the catalog;
//! * tuple-variable names are unique along each scope chain (no shadowing);
//! * every `$var.field` reference resolves to a column of the variable's
//!   table, in the block where the variable is in scope;
//! * explicit Skolem-term arguments are in-scope field references;
//! * element tags are valid XML names.

use std::collections::HashMap;

use sr_data::Database;

use crate::ast::{Block, Content, Element, Operand, RxlQuery};
use crate::lexer::RxlError;

/// Validate a query against a catalog. Returns the number of blocks checked.
pub fn validate(query: &RxlQuery, db: &Database) -> Result<usize, RxlError> {
    let mut counter = 0usize;
    let scope = HashMap::new();
    validate_block(&query.root, db, &scope, &mut counter)?;
    Ok(counter)
}

fn err(message: String) -> RxlError {
    RxlError { offset: 0, message }
}

fn validate_block(
    block: &Block,
    db: &Database,
    outer: &HashMap<String, String>,
    counter: &mut usize,
) -> Result<(), RxlError> {
    *counter += 1;
    let mut scope = outer.clone();
    for b in &block.bindings {
        let table = db
            .table(&b.table)
            .map_err(|_| err(format!("unknown table {} in from clause", b.table)))?;
        let _ = table;
        if scope.insert(b.var.clone(), b.table.clone()).is_some() {
            return Err(err(format!("variable ${} shadows an outer binding", b.var)));
        }
    }
    for c in &block.conditions {
        validate_operand(&c.left, db, &scope)?;
        validate_operand(&c.right, db, &scope)?;
    }
    validate_element(&block.element, db, &scope, counter)
}

fn validate_operand(
    op: &Operand,
    db: &Database,
    scope: &HashMap<String, String>,
) -> Result<(), RxlError> {
    if let Operand::Field { var, field } = op {
        let table = scope
            .get(var)
            .ok_or_else(|| err(format!("unbound variable ${var}")))?;
        let t = db
            .table(table)
            .map_err(|_| err(format!("unknown table {table}")))?;
        if !t.schema().contains(field) {
            return Err(err(format!(
                "table {table} has no column {field} (in ${var}.{field})"
            )));
        }
    }
    Ok(())
}

fn validate_element(
    e: &Element,
    db: &Database,
    scope: &HashMap<String, String>,
    counter: &mut usize,
) -> Result<(), RxlError> {
    if !is_xml_name(&e.tag) {
        return Err(err(format!("invalid element tag {:?}", e.tag)));
    }
    if let Some(sk) = &e.skolem {
        if !is_xml_name(&sk.name) {
            return Err(err(format!("invalid Skolem function name {:?}", sk.name)));
        }
        for a in &sk.args {
            validate_operand(a, db, scope)?;
        }
    }
    for c in &e.content {
        match c {
            Content::Element(child) => validate_element(child, db, scope, counter)?,
            Content::Text(op) => validate_operand(op, db, scope)?,
            Content::Block(b) => validate_block(b, db, scope, counter)?,
        }
    }
    Ok(())
}

/// A conservative XML-name check: letter or underscore first, then letters,
/// digits, hyphens, underscores, dots.
fn is_xml_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use sr_data::{DataType, Schema, Table};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(Table::new(
            "Supplier",
            Schema::of(&[
                ("suppkey", DataType::Int),
                ("name", DataType::Str),
                ("nationkey", DataType::Int),
            ]),
        ));
        db.add_table(Table::new(
            "Nation",
            Schema::of(&[("nationkey", DataType::Int), ("name", DataType::Str)]),
        ));
        db
    }

    #[test]
    fn valid_query_passes() {
        let q = parse(
            "from Supplier $s construct <supplier><name>$s.name</name>\
             { from Nation $n where $s.nationkey = $n.nationkey \
               construct <nation>$n.name</nation> }</supplier>",
        )
        .unwrap();
        assert_eq!(validate(&q, &db()).unwrap(), 2);
    }

    #[test]
    fn unknown_table_rejected() {
        let q = parse("from Widget $w construct <w>$w.x</w>").unwrap();
        let e = validate(&q, &db()).unwrap_err();
        assert!(e.message.contains("unknown table Widget"));
    }

    #[test]
    fn unknown_column_rejected() {
        let q = parse("from Supplier $s construct <x>$s.bogus</x>").unwrap();
        let e = validate(&q, &db()).unwrap_err();
        assert!(e.message.contains("no column bogus"));
    }

    #[test]
    fn unbound_variable_rejected() {
        let q = parse("from Supplier $s construct <x>$t.name</x>").unwrap();
        let e = validate(&q, &db()).unwrap_err();
        assert!(e.message.contains("unbound variable $t"));
    }

    #[test]
    fn shadowing_rejected() {
        let q =
            parse("from Supplier $s construct <a>{ from Nation $s construct <b>$s.name</b> }</a>")
                .unwrap();
        let e = validate(&q, &db()).unwrap_err();
        assert!(e.message.contains("shadows"));
    }

    #[test]
    fn outer_variables_visible_in_nested_blocks() {
        let q = parse(
            "from Supplier $s construct <a>{ from Nation $n \
             where $s.nationkey = $n.nationkey construct <b>$s.name</b> }</a>",
        )
        .unwrap();
        assert!(validate(&q, &db()).is_ok());
    }

    #[test]
    fn skolem_args_validated() {
        let q = parse("from Supplier $s construct <a ID=S1($s.nope)>$s.name</a>").unwrap();
        assert!(validate(&q, &db()).is_err());
        let ok = parse("from Supplier $s construct <a ID=S1($s.suppkey)>$s.name</a>").unwrap();
        assert!(validate(&ok, &db()).is_ok());
    }

    #[test]
    fn xml_name_rules() {
        assert!(is_xml_name("supplier"));
        assert!(is_xml_name("_x-1.y"));
        assert!(!is_xml_name("1bad"));
        assert!(!is_xml_name(""));
        assert!(!is_xml_name("has space"));
    }
}
