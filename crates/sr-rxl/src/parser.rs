//! Recursive-descent parser for RXL.
//!
//! ```text
//! query    := block
//! block    := [from binding (, binding)*] [where cond (, cond)*] construct element
//! binding  := Table $var
//! cond     := operand cmp operand          cmp ∈ { = != < <= > >= }
//! operand  := $var.field | int | float | string
//! element  := '<' tag [ID = Name(operand, …)] ('/>' | '>' content* '</' tag '>')
//! content  := element | '{' block '}' | $var.field | string
//! ```

use crate::ast::{
    Binding, Block, Condition, Content, Element, Operand, RxlCmp, RxlQuery, SkolemTerm,
};
use crate::lexer::{lex, RxlError, Spanned, Token};

/// Parse RXL source into a query.
///
/// ```
/// let q = sr_rxl::parse(
///     "from Supplier $s
///      where $s.suppkey > 10
///      construct <supplier><name>$s.name</name></supplier>",
/// ).unwrap();
/// assert_eq!(q.root.bindings[0].table, "Supplier");
/// assert_eq!(q.element_count(), 2);
/// ```
pub fn parse(src: &str) -> Result<RxlQuery, RxlError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let root = p.block()?;
    p.expect_eof()?;
    Ok(RxlQuery { root })
}

/// Maximum element/block nesting depth. The parser is recursive-descent, so
/// each nesting level consumes stack frames; `serve` feeds it inline RXL
/// from untrusted clients, and a deeply nested `<a><a><a>…` must come back
/// as a typed parse error (wire code BAD_QUERY), never a stack overflow.
/// Real views are a handful of levels deep; 128 is far above any legitimate
/// query and far below stack exhaustion.
pub const MAX_NESTING_DEPTH: usize = 128;

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    /// Current element/block recursion depth, guarded by
    /// [`MAX_NESTING_DEPTH`].
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> RxlError {
        RxlError {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Token) -> Result<(), RxlError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&self) -> Result<(), RxlError> {
        if *self.peek() == Token::Eof {
            Ok(())
        } else {
            Err(self.err(format!("trailing input: {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, RxlError> {
        match self.peek() {
            Token::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Bump the recursion depth, failing with a typed error at the limit.
    fn enter(&mut self) -> Result<(), RxlError> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(self.err(format!(
                "query nested deeper than {MAX_NESTING_DEPTH} levels"
            )));
        }
        Ok(())
    }

    fn block(&mut self) -> Result<Block, RxlError> {
        self.enter()?;
        let r = self.block_inner();
        self.depth -= 1;
        r
    }

    fn block_inner(&mut self) -> Result<Block, RxlError> {
        let mut bindings = Vec::new();
        if self.eat_kw("from") {
            loop {
                let table = self.ident()?;
                let var = match self.bump() {
                    Token::Var(v) => v,
                    other => {
                        return Err(self.err(format!("expected $variable, found {other:?}")));
                    }
                };
                bindings.push(Binding { table, var });
                if *self.peek() == Token::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let mut conditions = Vec::new();
        if self.eat_kw("where") {
            loop {
                conditions.push(self.condition()?);
                if *self.peek() == Token::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if !self.eat_kw("construct") {
            return Err(self.err(format!("expected construct, found {:?}", self.peek())));
        }
        let element = self.element()?;
        Ok(Block {
            bindings,
            conditions,
            element,
        })
    }

    fn condition(&mut self) -> Result<Condition, RxlError> {
        let left = self.operand()?;
        let op = match self.bump() {
            Token::Eq => RxlCmp::Eq,
            Token::Ne => RxlCmp::Ne,
            Token::LAngle => RxlCmp::Lt,
            Token::Le => RxlCmp::Le,
            Token::RAngle => RxlCmp::Gt,
            Token::Ge => RxlCmp::Ge,
            other => return Err(self.err(format!("expected comparison, found {other:?}"))),
        };
        let right = self.operand()?;
        Ok(Condition { left, op, right })
    }

    fn operand(&mut self) -> Result<Operand, RxlError> {
        match self.bump() {
            Token::Var(v) => {
                self.expect(Token::Dot)?;
                let field = self.ident()?;
                Ok(Operand::Field { var: v, field })
            }
            Token::Int(i) => Ok(Operand::Int(i)),
            Token::Float(x) => Ok(Operand::Float(x)),
            Token::Str(s) => Ok(Operand::Str(s)),
            other => Err(self.err(format!("expected operand, found {other:?}"))),
        }
    }

    fn element(&mut self) -> Result<Element, RxlError> {
        self.enter()?;
        let r = self.element_inner();
        self.depth -= 1;
        r
    }

    fn element_inner(&mut self) -> Result<Element, RxlError> {
        self.expect(Token::LAngle)?;
        let tag = self.ident()?;
        let skolem = if self.at_kw("ID") {
            self.bump();
            self.expect(Token::Eq)?;
            let name = self.ident()?;
            self.expect(Token::LParen)?;
            let mut args = Vec::new();
            if *self.peek() != Token::RParen {
                loop {
                    args.push(self.operand()?);
                    if *self.peek() == Token::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(Token::RParen)?;
            Some(SkolemTerm { name, args })
        } else {
            None
        };
        if *self.peek() == Token::SlashRAngle {
            self.bump();
            return Ok(Element {
                tag,
                skolem,
                content: Vec::new(),
            });
        }
        self.expect(Token::RAngle)?;
        let mut content = Vec::new();
        loop {
            match self.peek() {
                Token::LAngleSlash => {
                    self.bump();
                    let close = self.ident()?;
                    if close != tag {
                        return Err(
                            self.err(format!("closing tag </{close}> does not match <{tag}>"))
                        );
                    }
                    self.expect(Token::RAngle)?;
                    break;
                }
                Token::LAngle => content.push(Content::Element(self.element()?)),
                Token::LBrace => {
                    self.bump();
                    content.push(Content::Block(self.block()?));
                    self.expect(Token::RBrace)?;
                }
                Token::Var(_) => {
                    let op = self.operand()?;
                    content.push(Content::Text(op));
                }
                Token::Str(s) => {
                    let s = s.clone();
                    self.bump();
                    content.push(Content::Text(Operand::Str(s)));
                }
                Token::Int(i) => {
                    let i = *i;
                    self.bump();
                    content.push(Content::Text(Operand::Int(i)));
                }
                Token::Float(x) => {
                    let x = *x;
                    self.bump();
                    content.push(Content::Text(Operand::Float(x)));
                }
                other => {
                    return Err(self.err(format!(
                        "unexpected {other:?} in <{tag}> content (expected </{tag}>)"
                    )));
                }
            }
        }
        Ok(Element {
            tag,
            skolem,
            content,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal() {
        let q = parse("from Supplier $s construct <supplier>$s.name</supplier>").unwrap();
        assert_eq!(q.root.bindings.len(), 1);
        assert_eq!(q.root.element.tag, "supplier");
        assert_eq!(q.root.element.content.len(), 1);
    }

    #[test]
    fn parse_nested_blocks_and_conditions() {
        let q = parse(
            r#"
            from Supplier $s
            construct
              <supplier>
                <name>$s.name</name>
                { from Nation $n
                  where $s.nationkey = $n.nationkey
                  construct <nation>$n.name</nation> }
                { from PartSupp $ps, Part $p
                  where $s.suppkey = $ps.suppkey, $ps.partkey = $p.partkey
                  construct <part><name>$p.name</name></part> }
              </supplier>
            "#,
        )
        .unwrap();
        assert_eq!(q.block_count(), 3);
        assert_eq!(q.element_count(), 5);
        let blocks: Vec<_> = q.root.element.blocks().collect();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[1].bindings.len(), 2);
        assert_eq!(blocks[1].conditions.len(), 2);
    }

    #[test]
    fn parse_skolem_term() {
        let q = parse("from Supplier $s construct <supplier ID=S1($s.suppkey)>$s.name</supplier>")
            .unwrap();
        let sk = q.root.element.skolem.as_ref().unwrap();
        assert_eq!(sk.name, "S1");
        assert_eq!(sk.args, vec![Operand::field("s", "suppkey")]);
    }

    #[test]
    fn parse_constant_root_without_from() {
        let q =
            parse("construct <root>{ from Region $r construct <region>$r.name</region> }</root>")
                .unwrap();
        assert!(q.root.bindings.is_empty());
        assert_eq!(q.root.element.tag, "root");
    }

    #[test]
    fn parse_empty_element() {
        let q = parse("from Region $r construct <marker/>").unwrap();
        assert!(q.root.element.content.is_empty());
    }

    #[test]
    fn parse_comparisons_in_where() {
        let q = parse(
            "from Part $p where $p.size >= 10, $p.size < 20, $p.name != \"x\" \
             construct <part>$p.name</part>",
        )
        .unwrap();
        assert_eq!(q.root.conditions.len(), 3);
        assert_eq!(q.root.conditions[0].op, RxlCmp::Ge);
        assert_eq!(q.root.conditions[1].op, RxlCmp::Lt);
        assert_eq!(q.root.conditions[2].op, RxlCmp::Ne);
    }

    #[test]
    fn mismatched_close_tag_rejected() {
        let err = parse("from Region $r construct <a>$r.name</b>").unwrap_err();
        assert!(err.message.contains("does not match"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("from Region $r construct <a/> extra").is_err());
    }

    #[test]
    fn deep_element_nesting_is_typed_error_not_overflow() {
        // 100k unclosed <a> elements: with no guard this overflows the
        // stack; with the guard it must be a typed error at the limit.
        let src = format!("construct {}", "<a>".repeat(100_000));
        let err = parse(&src).unwrap_err();
        assert!(err.message.contains("nested deeper"), "{}", err.message);
    }

    #[test]
    fn deep_block_nesting_is_typed_error_not_overflow() {
        let mut src = String::from("construct ");
        for _ in 0..100_000 {
            src.push_str("<a>{ construct ");
        }
        let err = parse(&src).unwrap_err();
        assert!(err.message.contains("nested deeper"), "{}", err.message);
    }

    #[test]
    fn nesting_below_limit_still_parses() {
        // Balanced nesting just below the limit parses fine — the guard
        // must not reject legitimate (if ugly) queries.
        let depth = 64;
        let mut src = String::from("from Region $r construct ");
        for _ in 0..depth {
            src.push_str("<a>");
        }
        src.push_str("$r.name");
        for _ in 0..depth {
            src.push_str("</a>");
        }
        let q = parse(&src).unwrap();
        assert_eq!(q.element_count(), depth);
    }

    #[test]
    fn text_literals_in_content() {
        let q = parse("construct <x>\"hello\" 42</x>").unwrap();
        assert_eq!(
            q.root.element.content,
            vec![
                Content::Text(Operand::Str("hello".into())),
                Content::Text(Operand::Int(42))
            ]
        );
    }
}
