//! RXL abstract syntax.
//!
//! RXL (Relational to XML transformation Language) "combines the extraction
//! part of SQL (the `from` and `where` clauses) with the construction part of
//! XML-QL (the `construct` clause)" (§2). A query is a *block*:
//!
//! ```text
//! from Supplier $s
//! where $s.suppkey > 100
//! construct
//!   <supplier>
//!     <name>$s.name</name>
//!     { from Nation $n
//!       where $s.nationkey = $n.nationkey
//!       construct <nation>$n.name</nation> }
//!   </supplier>
//! ```
//!
//! Nested blocks in `{…}` build sets of sub-elements; *parallel* blocks under
//! one element express union; explicit Skolem terms (`<supplier ID=S1($s.suppkey)>`)
//! control element fusion across blocks.

use std::fmt;

/// A comparison operator in a `where` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxlCmp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for RxlCmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RxlCmp::Eq => "=",
            RxlCmp::Ne => "!=",
            RxlCmp::Lt => "<",
            RxlCmp::Le => "<=",
            RxlCmp::Gt => ">",
            RxlCmp::Ge => ">=",
        })
    }
}

/// An operand in a condition or text position.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// `$var.field`.
    Field {
        /// Tuple variable (without the `$`).
        var: String,
        /// Column name.
        field: String,
    },
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
}

impl Operand {
    /// `$var.field` shorthand.
    pub fn field(var: impl Into<String>, field: impl Into<String>) -> Operand {
        Operand::Field {
            var: var.into(),
            field: field.into(),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Field { var, field } => write!(f, "${var}.{field}"),
            Operand::Int(i) => write!(f, "{i}"),
            // Keep a decimal point so the literal re-parses as a float.
            Operand::Float(x) if x.fract() == 0.0 && x.is_finite() => write!(f, "{x:.1}"),
            Operand::Float(x) => write!(f, "{x}"),
            Operand::Str(s) => write!(f, "\"{}\"", s.replace('"', "\\\"")),
        }
    }
}

/// A tuple-variable binding: `Table $var`.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// Relation name.
    pub table: String,
    /// Variable name (without the `$`).
    pub var: String,
}

/// A `where`-clause condition.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// Left operand.
    pub left: Operand,
    /// Operator.
    pub op: RxlCmp,
    /// Right operand.
    pub right: Operand,
}

impl Condition {
    /// Join condition `$a.x = $b.y`.
    pub fn join(a: (&str, &str), b: (&str, &str)) -> Condition {
        Condition {
            left: Operand::field(a.0, a.1),
            op: RxlCmp::Eq,
            right: Operand::field(b.0, b.1),
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// An explicit Skolem term `Name($a.x, $b.y, …)` attached to an element.
#[derive(Debug, Clone, PartialEq)]
pub struct SkolemTerm {
    /// Skolem function name (e.g. `S1`).
    pub name: String,
    /// Argument fields.
    pub args: Vec<Operand>,
}

impl fmt::Display for SkolemTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// Content of an element.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// A literal child element.
    Element(Element),
    /// A text expression (`$var.field` or a literal).
    Text(Operand),
    /// A nested sub-query block `{ from … construct … }`.
    Block(Block),
}

/// An XML element template.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Tag name.
    pub tag: String,
    /// Optional explicit Skolem term (`<tag ID=F(args)>`).
    pub skolem: Option<SkolemTerm>,
    /// Ordered content.
    pub content: Vec<Content>,
}

impl Element {
    /// An element with content and no explicit Skolem term.
    pub fn new(tag: impl Into<String>, content: Vec<Content>) -> Element {
        Element {
            tag: tag.into(),
            skolem: None,
            content,
        }
    }

    /// Direct sub-query blocks of this element.
    pub fn blocks(&self) -> impl Iterator<Item = &Block> {
        self.content.iter().filter_map(|c| match c {
            Content::Block(b) => Some(b),
            _ => None,
        })
    }
}

/// A query block: `from` bindings, `where` conditions, and one constructed
/// element.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// `from` clause (may be empty for a constant root element).
    pub bindings: Vec<Binding>,
    /// `where` clause.
    pub conditions: Vec<Condition>,
    /// `construct` clause.
    pub element: Element,
}

/// A complete RXL view query.
#[derive(Debug, Clone, PartialEq)]
pub struct RxlQuery {
    /// The outermost block.
    pub root: Block,
}

impl RxlQuery {
    /// Count the total number of element templates in the query.
    pub fn element_count(&self) -> usize {
        fn count_element(e: &Element) -> usize {
            1 + e
                .content
                .iter()
                .map(|c| match c {
                    Content::Element(e) => count_element(e),
                    Content::Block(b) => count_element(&b.element),
                    Content::Text(_) => 0,
                })
                .sum::<usize>()
        }
        count_element(&self.root.element)
    }

    /// Count the total number of blocks (sub-queries), including the root.
    pub fn block_count(&self) -> usize {
        fn count_in_element(e: &Element) -> usize {
            e.content
                .iter()
                .map(|c| match c {
                    Content::Element(e) => count_in_element(e),
                    Content::Block(b) => 1 + count_in_element(&b.element),
                    Content::Text(_) => 0,
                })
                .sum::<usize>()
        }
        1 + count_in_element(&self.root.element)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RxlQuery {
        // from Supplier $s construct
        //   <supplier><name>$s.name</name>
        //     { from Nation $n where $s.nationkey = $n.nationkey
        //       construct <nation>$n.name</nation> }</supplier>
        RxlQuery {
            root: Block {
                bindings: vec![Binding {
                    table: "Supplier".into(),
                    var: "s".into(),
                }],
                conditions: vec![],
                element: Element::new(
                    "supplier",
                    vec![
                        Content::Element(Element::new(
                            "name",
                            vec![Content::Text(Operand::field("s", "name"))],
                        )),
                        Content::Block(Block {
                            bindings: vec![Binding {
                                table: "Nation".into(),
                                var: "n".into(),
                            }],
                            conditions: vec![Condition::join(
                                ("s", "nationkey"),
                                ("n", "nationkey"),
                            )],
                            element: Element::new(
                                "nation",
                                vec![Content::Text(Operand::field("n", "name"))],
                            ),
                        }),
                    ],
                ),
            },
        }
    }

    #[test]
    fn counts() {
        let q = sample();
        assert_eq!(q.element_count(), 3);
        assert_eq!(q.block_count(), 2);
    }

    #[test]
    fn blocks_iterator() {
        let q = sample();
        assert_eq!(q.root.element.blocks().count(), 1);
    }

    #[test]
    fn displays() {
        assert_eq!(Operand::field("s", "name").to_string(), "$s.name");
        assert_eq!(Operand::Str("a\"b".into()).to_string(), "\"a\\\"b\"");
        assert_eq!(
            Condition::join(("s", "k"), ("n", "k")).to_string(),
            "$s.k = $n.k"
        );
        let sk = SkolemTerm {
            name: "S1".into(),
            args: vec![Operand::field("s", "suppkey")],
        };
        assert_eq!(sk.to_string(), "S1($s.suppkey)");
    }
}
