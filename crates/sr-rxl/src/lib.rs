#![warn(missing_docs)]
//! # sr-rxl
//!
//! RXL — the *Relational to XML transformation Language* of SilkRoute
//! ("Efficient Evaluation of XML Middle-ware Queries", SIGMOD 2001, §2).
//!
//! An RXL view query combines SQL-style data extraction (`from`, `where`)
//! with XML-QL-style construction (`construct` templates), supporting the
//! three features the paper highlights: **nested queries** (blocks inside
//! `construct`), **block structure** (parallel blocks = union), and
//! **Skolem functions** (explicit element identity / fusion).
//!
//! This crate provides the concrete syntax: [`parse()`](parser::parse), the [`ast`],
//! [`validate()`](validate::validate) against a catalog, and a canonical [`pretty()`](pretty::pretty) printer.
//! Translation to the view-tree IR lives in `sr-viewtree`.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod validate;

pub use ast::{Binding, Block, Condition, Content, Element, Operand, RxlCmp, RxlQuery, SkolemTerm};
pub use lexer::RxlError;
pub use parser::{parse, MAX_NESTING_DEPTH};
pub use pretty::pretty;
pub use validate::validate;
