//! RXL tokenizer.
//!
//! `<` is overloaded (tag opener vs. comparison); the lexer resolves the
//! multi-character forms greedily (`</`, `<=`, `/>`, `>=`, `!=`) and leaves
//! the single-character ambiguity to the parser, which knows whether it is
//! in a `where` clause or a `construct` template.

use std::fmt;

/// RXL lexical error.
#[derive(Debug, Clone, PartialEq)]
pub struct RxlError {
    /// Byte offset.
    pub offset: usize,
    /// Message.
    pub message: String,
}

impl fmt::Display for RxlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RXL error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for RxlError {}

/// An RXL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier / keyword.
    Ident(String),
    /// `$var`.
    Var(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Double-quoted string literal.
    Str(String),
    /// `<`
    LAngle,
    /// `</`
    LAngleSlash,
    /// `>`
    RAngle,
    /// `/>`
    SlashRAngle,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

/// A token with its source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset.
    pub offset: usize,
}

/// Tokenize RXL source.
pub fn lex(src: &str) -> Result<Vec<Spanned>, RxlError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let push = |out: &mut Vec<Spanned>, token, offset| out.push(Spanned { token, offset });
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '{' => {
                push(&mut out, Token::LBrace, i);
                i += 1;
            }
            '}' => {
                push(&mut out, Token::RBrace, i);
                i += 1;
            }
            '(' => {
                push(&mut out, Token::LParen, i);
                i += 1;
            }
            ')' => {
                push(&mut out, Token::RParen, i);
                i += 1;
            }
            ',' => {
                push(&mut out, Token::Comma, i);
                i += 1;
            }
            '.' => {
                push(&mut out, Token::Dot, i);
                i += 1;
            }
            '=' => {
                push(&mut out, Token::Eq, i);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(&mut out, Token::Ne, i);
                    i += 2;
                } else {
                    return Err(RxlError {
                        offset: i,
                        message: "unexpected '!'".into(),
                    });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'/') => {
                    push(&mut out, Token::LAngleSlash, i);
                    i += 2;
                }
                Some(b'=') => {
                    push(&mut out, Token::Le, i);
                    i += 2;
                }
                _ => {
                    push(&mut out, Token::LAngle, i);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(&mut out, Token::Ge, i);
                    i += 2;
                } else {
                    push(&mut out, Token::RAngle, i);
                    i += 1;
                }
            }
            '/' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    push(&mut out, Token::SlashRAngle, i);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'/') {
                    // Line comment.
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    return Err(RxlError {
                        offset: i,
                        message: "unexpected '/'".into(),
                    });
                }
            }
            '$' => {
                let start = i;
                i += 1;
                let name_start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                if i == name_start {
                    return Err(RxlError {
                        offset: start,
                        message: "expected variable name after '$'".into(),
                    });
                }
                push(&mut out, Token::Var(src[name_start..i].to_string()), start);
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(RxlError {
                                offset: start,
                                message: "unterminated string".into(),
                            });
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') if bytes.get(i + 1) == Some(&b'"') => {
                            s.push('"');
                            i += 2;
                        }
                        Some(_) => {
                            let ch_len = match bytes[i] {
                                0x00..=0x7f => 1,
                                0xc0..=0xdf => 2,
                                0xe0..=0xef => 3,
                                _ => 4,
                            };
                            s.push_str(&src[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                push(&mut out, Token::Str(s), start);
            }
            '0'..='9' | '-' => {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                while matches!(bytes.get(i), Some(b'0'..=b'9')) {
                    i += 1;
                }
                let mut is_float = false;
                if bytes.get(i) == Some(&b'.') && matches!(bytes.get(i + 1), Some(b'0'..=b'9')) {
                    is_float = true;
                    i += 1;
                    while matches!(bytes.get(i), Some(b'0'..=b'9')) {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let token = if is_float {
                    Token::Float(text.parse().map_err(|e| RxlError {
                        offset: start,
                        message: format!("bad float: {e}"),
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|e| RxlError {
                        offset: start,
                        message: format!("bad int: {e}"),
                    })?)
                };
                push(&mut out, token, start);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                push(&mut out, Token::Ident(src[start..i].to_string()), start);
            }
            other => {
                return Err(RxlError {
                    offset: i,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    out.push(Spanned {
        token: Token::Eof,
        offset: src.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn basic_query_tokens() {
        assert_eq!(
            toks("from Supplier $s construct <name>$s.name</name>"),
            vec![
                Token::Ident("from".into()),
                Token::Ident("Supplier".into()),
                Token::Var("s".into()),
                Token::Ident("construct".into()),
                Token::LAngle,
                Token::Ident("name".into()),
                Token::RAngle,
                Token::Var("s".into()),
                Token::Dot,
                Token::Ident("name".into()),
                Token::LAngleSlash,
                Token::Ident("name".into()),
                Token::RAngle,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn angle_disambiguation() {
        assert_eq!(
            toks("< </ <= > >= />"),
            vec![
                Token::LAngle,
                Token::LAngleSlash,
                Token::Le,
                Token::RAngle,
                Token::Ge,
                Token::SlashRAngle,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("from // a comment\nSupplier $s"),
            vec![
                Token::Ident("from".into()),
                Token::Ident("Supplier".into()),
                Token::Var("s".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""say \"hi\"""#),
            vec![Token::Str("say \"hi\"".into()), Token::Eof]
        );
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("12 -5 2.5"),
            vec![
                Token::Int(12),
                Token::Int(-5),
                Token::Float(2.5),
                Token::Eof
            ]
        );
    }

    #[test]
    fn dollar_needs_name() {
        assert!(lex("$ x").is_err());
    }

    #[test]
    fn bad_char_reports_offset() {
        let err = lex("from @").unwrap_err();
        assert_eq!(err.offset, 5);
    }
}
