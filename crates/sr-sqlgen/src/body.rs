//! Lowering datalog rule bodies to engine plans.
//!
//! A rule body `Supplier(s), PartSupp(ps), s.suppkey = ps.suppkey, …` becomes
//! a join tree of scans: equality predicates between atoms turn into hash
//! join keys (connected atoms joined first), remaining predicates into
//! filters — the same strategy the engine's SQL binder uses, so the SQL
//! printed from these plans round-trips through the server identically.

use sr_engine::{CmpOp, EngineError, Expr, JoinKind, Plan, Predicate};
use sr_rxl::RxlCmp;
use sr_viewtree::{BodyOperand, RuleBody};

/// Engine-level column name for a body field: `alias_column`.
pub fn field_col(alias: &str, column: &str) -> String {
    format!("{alias}_{column}")
}

fn cmp_op(op: RxlCmp) -> CmpOp {
    match op {
        RxlCmp::Eq => CmpOp::Eq,
        RxlCmp::Ne => CmpOp::Ne,
        RxlCmp::Lt => CmpOp::Lt,
        RxlCmp::Le => CmpOp::Le,
        RxlCmp::Gt => CmpOp::Gt,
        RxlCmp::Ge => CmpOp::Ge,
    }
}

fn operand_expr(o: &BodyOperand) -> Expr {
    match o {
        BodyOperand::Field { alias, column } => Expr::col(field_col(alias, column)),
        BodyOperand::Int(i) => Expr::lit(*i),
        BodyOperand::Float(x) => Expr::lit(*x),
        BodyOperand::Str(s) => Expr::lit(s.as_str()),
    }
}

/// Build the join/filter plan for a rule body.
pub fn body_plan(body: &RuleBody) -> Result<Plan, EngineError> {
    if body.atoms.is_empty() {
        return Err(EngineError::InvalidPlan(
            "rule body with no atoms (constant elements are handled by the tagger)".into(),
        ));
    }

    // Split predicates: inter-atom equalities are join candidates, the rest
    // are filters.
    #[derive(Clone)]
    struct Link {
        left: (String, String),
        right: (String, String),
        used: bool,
    }
    let mut links: Vec<Link> = Vec::new();
    let mut filters: Vec<Predicate> = Vec::new();
    for p in &body.preds {
        match p.as_field_equality() {
            Some(((la, lc), (ra, rc))) if la != ra => links.push(Link {
                left: (la.to_string(), lc.to_string()),
                right: (ra.to_string(), rc.to_string()),
                used: false,
            }),
            _ => filters.push(Predicate::new(
                operand_expr(&p.left),
                cmp_op(p.op),
                operand_expr(&p.right),
            )),
        }
    }

    let mut joined: Vec<String> = vec![body.atoms[0].alias.clone()];
    let mut plan = Plan::scan(body.atoms[0].table.clone(), body.atoms[0].alias.clone());
    let mut pending: Vec<(String, String)> = body.atoms[1..]
        .iter()
        .map(|a| (a.table.clone(), a.alias.clone()))
        .collect();

    while !pending.is_empty() {
        // Prefer an atom connected by an unused equality link.
        let pos = pending
            .iter()
            .position(|(_, alias)| {
                links.iter().any(|l| {
                    !l.used
                        && ((joined.contains(&l.left.0) && l.right.0 == *alias)
                            || (joined.contains(&l.right.0) && l.left.0 == *alias))
                })
            })
            .unwrap_or(0);
        let (table, alias) = pending.remove(pos);
        let mut keys = Vec::new();
        for l in &mut links {
            if l.used {
                continue;
            }
            if joined.contains(&l.left.0) && l.right.0 == alias {
                keys.push((
                    field_col(&l.left.0, &l.left.1),
                    field_col(&l.right.0, &l.right.1),
                ));
                l.used = true;
            } else if joined.contains(&l.right.0) && l.left.0 == alias {
                keys.push((
                    field_col(&l.right.0, &l.right.1),
                    field_col(&l.left.0, &l.left.1),
                ));
                l.used = true;
            }
        }
        plan = plan.join(Plan::scan(table, alias.clone()), JoinKind::Inner, keys);
        joined.push(alias);
    }

    // Equality links never consumed (both sides now available) become
    // filters, e.g. redundant conditions or self-links on one atom.
    for l in links.iter().filter(|l| !l.used) {
        filters.push(Predicate::eq_cols(
            field_col(&l.left.0, &l.left.1),
            field_col(&l.right.0, &l.right.1),
        ));
    }

    Ok(plan.filter(filters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_data::{row, DataType, Database, Schema, Table};
    use sr_engine::execute;
    use sr_viewtree::{Atom, BodyPred};

    fn db() -> Database {
        let mut db = Database::new();
        let mut s = Table::new(
            "S",
            Schema::of(&[("k", DataType::Int), ("n", DataType::Int)]),
        );
        s.insert_all([row![1i64, 10i64], row![2i64, 20i64]])
            .unwrap();
        let mut n = Table::new(
            "N",
            Schema::of(&[("n", DataType::Int), ("name", DataType::Str)]),
        );
        n.insert_all([row![10i64, "a"], row![20i64, "b"]]).unwrap();
        db.add_table(s);
        db.add_table(n);
        db
    }

    fn atom(t: &str, a: &str) -> Atom {
        Atom {
            table: t.into(),
            alias: a.into(),
        }
    }

    #[test]
    fn single_atom_body() {
        let body = RuleBody {
            atoms: vec![atom("S", "s")],
            preds: vec![],
        };
        let p = body_plan(&body).unwrap();
        assert_eq!(execute(&p, &db()).unwrap().len(), 2);
    }

    #[test]
    fn join_via_equality() {
        let body = RuleBody {
            atoms: vec![atom("S", "s"), atom("N", "x")],
            preds: vec![BodyPred {
                left: BodyOperand::field("s", "n"),
                op: RxlCmp::Eq,
                right: BodyOperand::field("x", "n"),
            }],
        };
        let p = body_plan(&body).unwrap();
        let txt = p.to_string();
        assert!(txt.contains("InnerJoin [s_n = x_n]"), "got:\n{txt}");
        assert_eq!(execute(&p, &db()).unwrap().len(), 2);
    }

    #[test]
    fn literal_predicates_become_filters() {
        let body = RuleBody {
            atoms: vec![atom("S", "s")],
            preds: vec![BodyPred {
                left: BodyOperand::field("s", "k"),
                op: RxlCmp::Gt,
                right: BodyOperand::Int(1),
            }],
        };
        let p = body_plan(&body).unwrap();
        assert_eq!(execute(&p, &db()).unwrap().len(), 1);
    }

    #[test]
    fn empty_body_rejected() {
        assert!(body_plan(&RuleBody::default()).is_err());
    }

    #[test]
    fn redundant_equalities_become_filters() {
        // Two equalities between the same pair: one becomes the hash key,
        // the duplicate must survive as a filter, not be dropped.
        let body = RuleBody {
            atoms: vec![atom("S", "s"), atom("N", "x")],
            preds: vec![
                BodyPred {
                    left: BodyOperand::field("s", "n"),
                    op: RxlCmp::Eq,
                    right: BodyOperand::field("x", "n"),
                },
                BodyPred {
                    left: BodyOperand::field("s", "k"),
                    op: RxlCmp::Eq,
                    right: BodyOperand::field("x", "n"),
                },
            ],
        };
        let p = body_plan(&body).unwrap();
        // s.k = x.n matches nothing in the fixture (keys 1,2 vs n 10,20).
        assert_eq!(execute(&p, &db()).unwrap().len(), 0);
    }
}
