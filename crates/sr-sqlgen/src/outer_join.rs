//! Outer-join query plans (paper §3.4).
//!
//! "The sub-query for a node n in a view tree and the sub-queries of n's
//! children are combined with an outer join. The sub-queries for n's
//! children (siblings) are combined with an outer union." —
//! `R ⟕ (S ∪ T)`, the style SilkRoute implements by default.
//!
//! Deviation from the paper's sample SQL, per DESIGN.md §6.1: because our
//! Skolem terms carry ancestor keys, every child sub-query projects its
//! parent's key variables, so the outer join is always on the parent's key
//! columns — no per-branch `(L2 = i AND …)` disjunctions are needed.

use std::collections::HashSet;

use sr_data::{DataType, Database};
use sr_engine::{EngineError, Expr, JoinKind, Plan};
use sr_viewtree::{ReducedComponent, ViewTree};

use crate::body::{body_plan, field_col};
use crate::relation::{component_columns, var_dtype, ColumnSpec};

/// Prefix for join-only duplicate columns on the union side.
const JK: &str = "jk_";

/// Builder for one class's base query, given `(class index, parent depth)`.
pub(crate) type BaseFn<'a> = &'a dyn Fn(usize, u16) -> Result<Plan, EngineError>;

/// Builder for a class's keys-only identity rows (emission-order repair).
pub(crate) type IdentityFn<'a> = &'a dyn Fn(usize) -> Result<Plan, EngineError>;

/// Build the outer-join plan for one reduced component, including the final
/// projection to the §3.2 relation layout and the trailing sort.
pub fn outer_join_plan(
    tree: &ViewTree,
    rc: &ReducedComponent,
    db: &Database,
) -> Result<Plan, EngineError> {
    let base: BaseFn = &|idx, parent_depth| class_base(tree, rc, idx, parent_depth);
    let identity: IdentityFn = &|idx| {
        let class = &rc.nodes[idx];
        let root = tree.node(class.root);
        Ok(body_plan(&class.body)?.project(
            root.key_args
                .iter()
                .map(|&v| {
                    let var = tree.var(v);
                    (
                        var.plan_name(),
                        sr_engine::Expr::col(field_col(&var.alias, &var.column)),
                    )
                })
                .collect(),
        ))
    };
    assemble(tree, rc, db, base, identity)
}

/// Assemble a component plan from per-class base builders: the recursive
/// §3.4 join/union structure, the layout projection, and the trailing sort.
pub(crate) fn assemble(
    tree: &ViewTree,
    rc: &ReducedComponent,
    db: &Database,
    base: BaseFn<'_>,
    identity: IdentityFn<'_>,
) -> Result<Plan, EngineError> {
    let plan = subtree(tree, rc, 0, 0, db, base, identity)?;
    finalize(tree, rc, plan, db)
}

/// Project a plan to the component's relation layout (filling columns the
/// join tree did not produce with typed NULLs) and sort it.
///
/// The ORDER BY uses the level labels and **key** variables only, in layout
/// order. Content variables must not participate: rows representing a
/// parent element's own payload (identity/union branches) leave child
/// columns NULL while child rows leave parent *content* NULL, so sorting by
/// content would order a parent's payload row after its children. Keys
/// alone already give a total order (they identify every element instance).
pub fn finalize(
    tree: &ViewTree,
    rc: &ReducedComponent,
    plan: Plan,
    db: &Database,
) -> Result<Plan, EngineError> {
    let layout = component_columns(tree, rc);
    let schema = plan.schema(db)?;
    let mut is_key = vec![false; tree.vars.len()];
    for n in &tree.nodes {
        for &k in &n.key_args {
            is_key[k] = true;
        }
    }
    let items = layout
        .iter()
        .map(|c| {
            let name = c.name(tree);
            let expr = if schema.contains(&name) {
                Expr::col(name.clone())
            } else {
                match c {
                    ColumnSpec::Level(_) => Expr::TypedNull(DataType::Int),
                    ColumnSpec::Var(v) => Expr::TypedNull(var_dtype(tree, db, *v)),
                }
            };
            (name, expr)
        })
        .collect::<Vec<_>>();
    let keys: Vec<String> = layout
        .iter()
        .filter(|c| match c {
            ColumnSpec::Level(_) => true,
            ColumnSpec::Var(v) => is_key[*v],
        })
        .map(|c| c.name(tree))
        .collect();
    Ok(plan.project(items).sort(keys))
}

/// The base query of one class: its rule body joined, projecting its Skolem
/// arguments under their `v{p}_{q}` names plus the `L` literals for the
/// levels between its parent class root and its own root.
pub fn class_base(
    tree: &ViewTree,
    rc: &ReducedComponent,
    idx: usize,
    parent_depth: u16,
) -> Result<Plan, EngineError> {
    let class = &rc.nodes[idx];
    let root = tree.node(class.root);
    let base = body_plan(&class.body)?;
    let mut items: Vec<(String, Expr)> = Vec::new();
    for p in (parent_depth + 1)..=(root.sfi.len() as u16) {
        items.push((format!("L{p}"), Expr::lit(root.sfi[p as usize - 1] as i64)));
    }
    for &v in &class.args {
        let var = tree.var(v);
        items.push((
            var.plan_name(),
            Expr::col(field_col(&var.alias, &var.column)),
        ));
    }
    Ok(base.project(items))
}

fn subtree(
    tree: &ViewTree,
    rc: &ReducedComponent,
    idx: usize,
    parent_depth: u16,
    db: &Database,
    base_fn: BaseFn<'_>,
    identity_fn: IdentityFn<'_>,
) -> Result<Plan, EngineError> {
    let class = &rc.nodes[idx];
    let depth = tree.node(class.root).sfi.len() as u16;
    let base = base_fn(idx, parent_depth)?;
    if class.children.is_empty() {
        return Ok(base);
    }

    let mut children = class
        .children
        .iter()
        .map(|&c| subtree(tree, rc, c, depth, db, base_fn, identity_fn))
        .collect::<Result<Vec<_>, _>>()?;

    // Identity branch (emission-order repair): if this class carries
    // payload the tagger must emit *before* any child — variable text or
    // merged `1`-members — and some original-tree descendant lives in a
    // *different* component, that other stream's tuples can sort before
    // every payload-bearing row of this one (their L ordinal may be smaller
    // than our smallest included child's). Adding a keys-only union branch
    // gives every class instance its own row, whose all-NULL deeper labels
    // sort first, so the payload snapshot is available when the element
    // opens. Single-stream components never need it.
    let mut identity_added = false;
    if class_has_payload(tree, rc, idx) && has_external_descendant(tree, rc, idx) {
        identity_added = true;
        children.push(identity_fn(idx)?);
    }
    // "Plans with no branches do not require the union operator" (§3.4).
    let union = if children.len() == 1 {
        children.into_iter().next().expect("one child")
    } else {
        Plan::OuterUnion { inputs: children }
    };

    // Rename every column the union shares with the base so the join output
    // has unique names; join on the parent's key variables.
    let base_cols: HashSet<String> = base.schema(db)?.names().map(str::to_string).collect();
    let union_schema = union.schema(db)?;
    let union_items: Vec<(String, Expr)> = union_schema
        .names()
        .map(|n| {
            let out = if base_cols.contains(n) {
                format!("{JK}{n}")
            } else {
                n.to_string()
            };
            (out, Expr::col(n.to_string()))
        })
        .collect();
    let union_renamed = union.project(union_items.clone());

    let keys: Vec<(String, String)> = tree
        .node(class.root)
        .key_args
        .iter()
        .map(|&v| {
            let name = tree.var(v).plan_name();
            if !base_cols.contains(&name) {
                return Err(EngineError::InvalidPlan(format!(
                    "join key {name} missing from class base"
                )));
            }
            Ok((name.clone(), format!("{JK}{name}")))
        })
        .collect::<Result<_, _>>()?;

    // §3.4: "A '1'-labeled edge requires an inner join, while a * requires
    // a left outer join." Generalized to the union of branches: if any
    // branch is *total* (label `1` or `+`, or the identity branch), every
    // parent instance has at least one union row, so an inner join neither
    // drops parents nor loses the NULL-padding row (it never fires).
    let any_total = identity_added
        || class
            .children
            .iter()
            .any(|&c| !rc.nodes[c].label.optional());
    let kind = if any_total {
        JoinKind::Inner
    } else {
        JoinKind::LeftOuter
    };
    let joined = base.join(union_renamed, kind, keys);

    // Drop the jk_ duplicates.
    let mut out_items: Vec<(String, Expr)> = base_cols
        .iter()
        .map(|n| (n.clone(), Expr::col(n.clone())))
        .collect();
    out_items.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, _) in &union_items {
        if !name.starts_with(JK) {
            out_items.push((name.clone(), Expr::col(name.clone())));
        }
    }
    Ok(joined.project(out_items))
}

/// Does the class have content the tagger emits from row snapshots — merged
/// member elements, or variable text on any member?
fn class_has_payload(tree: &ViewTree, rc: &ReducedComponent, idx: usize) -> bool {
    let class = &rc.nodes[idx];
    if class.members.len() > 1 {
        return true;
    }
    class.members.iter().any(|&m| {
        tree.node(m).content.iter().any(|c| {
            matches!(
                c,
                sr_viewtree::NodeContent::Text(sr_viewtree::TextSource::Var(_))
            )
        })
    })
}

/// Does any original-tree descendant of the class's members belong to a
/// different component (i.e. reach the tagger through another stream)?
fn has_external_descendant(tree: &ViewTree, rc: &ReducedComponent, idx: usize) -> bool {
    let in_component: std::collections::HashSet<sr_viewtree::NodeId> = rc
        .nodes
        .iter()
        .flat_map(|c| c.members.iter().copied())
        .collect();
    let mut stack: Vec<sr_viewtree::NodeId> = rc.nodes[idx]
        .members
        .iter()
        .flat_map(|&m| tree.node(m).children.iter().copied())
        .collect();
    while let Some(n) = stack.pop() {
        if !in_component.contains(&n) {
            return true;
        }
        stack.extend(tree.node(n).children.iter().copied());
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_data::{row, ForeignKey, Schema, Table, Value};
    use sr_engine::execute;
    use sr_viewtree::{build, components, reduce_component, EdgeSet};

    /// The paper's Fig. 8 micro-instance: 3 suppliers, 3 nations, 3 parts;
    /// supplier 2 has no parts.
    fn setup() -> (ViewTree, Database) {
        let mut db = Database::new();
        let mut s = Table::new(
            "Supplier",
            Schema::of(&[
                ("suppkey", DataType::Int),
                ("name", DataType::Str),
                ("nationkey", DataType::Int),
            ]),
        );
        s.insert_all([
            row![1i64, "USA Metalworks", 24i64],
            row![2i64, "Romana Espanola", 3i64],
            row![3i64, "Fonderie Francais", 19i64],
        ])
        .unwrap();
        let mut n = Table::new(
            "Nation",
            Schema::of(&[("nationkey", DataType::Int), ("name", DataType::Str)]),
        );
        n.insert_all([
            row![24i64, "USA"],
            row![3i64, "Spain"],
            row![19i64, "France"],
        ])
        .unwrap();
        let mut ps = Table::new(
            "PartSupp",
            Schema::of(&[("partkey", DataType::Int), ("suppkey", DataType::Int)]),
        );
        ps.insert_all([row![4i64, 1i64], row![12i64, 1i64], row![20i64, 3i64]])
            .unwrap();
        let mut p = Table::new(
            "Part",
            Schema::of(&[("partkey", DataType::Int), ("name", DataType::Str)]),
        );
        p.insert_all([
            row![4i64, "plated brass"],
            row![12i64, "anodized steel"],
            row![20i64, "polished nickel"],
        ])
        .unwrap();
        db.add_table(s);
        db.add_table(n);
        db.add_table(ps);
        db.add_table(p);
        db.declare_key("Supplier", &["suppkey"]).unwrap();
        db.declare_key("Nation", &["nationkey"]).unwrap();
        db.declare_key("PartSupp", &["partkey", "suppkey"]).unwrap();
        db.declare_key("Part", &["partkey"]).unwrap();
        db.declare_foreign_key(ForeignKey::new(
            "Supplier",
            &["nationkey"],
            "Nation",
            &["nationkey"],
        ))
        .unwrap();

        // The paper's boxed query fragment (Fig. 4).
        let q = sr_rxl::parse(
            "from Supplier $s construct <supplier>\
               { from Nation $n where $s.nationkey = $n.nationkey \
                 construct <name>$n.name</name> }\
               { from PartSupp $ps, Part $p \
                 where $s.suppkey = $ps.suppkey, $ps.partkey = $p.partkey \
                 construct <part>$p.name</part> }\
             </supplier>",
        )
        .unwrap();
        let t = build(&q, &db).unwrap();
        (t, db)
    }

    #[test]
    fn unified_plan_reproduces_fig9_shape() {
        let (t, db) = setup();
        let full = EdgeSet::full(&t);
        let comps = components(&t, full);
        assert_eq!(comps.len(), 1);
        let rc = reduce_component(&t, &comps[0], full, false);
        let plan = outer_join_plan(&t, &rc, &db).unwrap();
        let rs = execute(&plan, &db).unwrap();
        // Fig. 9: 6 tuples — supp#1 ×3 (nation + 2 parts), supp#2 ×1
        // (nation, no part), supp#3 ×2 (nation + 1 part).
        assert_eq!(rs.len(), 6);
        // Sorted by L1, suppkey, L2, …: first tuple is supplier 1's name
        // branch (L2 = 1).
        let l2 = rs.schema.position("L2").unwrap();
        let suppkey = rs.schema.position("v1_1").unwrap();
        assert_eq!(rs.rows[0].get(suppkey), &Value::Int(1));
        assert_eq!(rs.rows[0].get(l2), &Value::Int(1));
        assert_eq!(rs.rows[1].get(l2), &Value::Int(2), "then part branch");
        // Supplier 2 has exactly one tuple and its part columns are NULL.
        let supp2: Vec<_> = rs
            .rows
            .iter()
            .filter(|r| r.get(suppkey) == &Value::Int(2))
            .collect();
        assert_eq!(supp2.len(), 1);
    }

    #[test]
    fn reduced_unified_plan_collapses_name_branch() {
        let (t, db) = setup();
        let full = EdgeSet::full(&t);
        let comps = components(&t, full);
        let rc = reduce_component(&t, &comps[0], full, true);
        assert_eq!(rc.nodes.len(), 2, "supplier+name vs part");
        let plan = outer_join_plan(&t, &rc, &db).unwrap();
        let rs = execute(&plan, &db).unwrap();
        // One row per (supplier, part) with supplier 2 padded: 2+1+1 = 4.
        assert_eq!(rs.len(), 4);
    }

    #[test]
    fn leaf_component_plan_is_plain_select() {
        let (t, db) = setup();
        let empty = EdgeSet::empty();
        let comps = components(&t, empty);
        let part = comps.iter().find(|c| t.node(c.root).tag == "part").unwrap();
        let rc = reduce_component(&t, part, empty, true);
        let plan = outer_join_plan(&t, &rc, &db).unwrap();
        let rs = execute(&plan, &db).unwrap();
        assert_eq!(rs.len(), 3, "three partsupp rows");
        // No union or outer join in a single-node component.
        let txt = plan.to_string();
        assert!(!txt.contains("OuterUnion"));
        assert!(!txt.contains("LeftOuterJoin"));
    }

    #[test]
    fn all_partitions_union_to_same_multiset_of_elements() {
        // Count part-element tuples across every plan: must always be 3.
        let (t, db) = setup();
        for set in sr_viewtree::all_edge_sets(&t) {
            let comps = components(&t, set);
            let mut part_rows = 0usize;
            for comp in &comps {
                let rc = reduce_component(&t, comp, set, false);
                let plan = outer_join_plan(&t, &rc, &db).unwrap();
                let rs = execute(&plan, &db).unwrap();
                // Count rows whose deepest-level branch is the part node.
                let schema = &rs.schema;
                let l2 = schema.position("L2");
                let pname = schema.position("v2_3");
                for row in &rs.rows {
                    let is_part = match (l2, pname) {
                        (Some(l2), _) => row.get(l2) == &Value::Int(2),
                        (None, Some(p)) => !row.get(p).is_null(),
                        _ => false,
                    };
                    if is_part {
                        part_rows += 1;
                    }
                }
            }
            assert_eq!(part_rows, 3, "plan {set} lost or duplicated part tuples");
        }
    }
}
