//! Partitioned-relation schemas (paper §3.2).
//!
//! For a component `Ti`, the relation `Ri` has attributes
//! `SFIattrs ∪ STVattrs`: the level labels `L1…L_SFImax(Ti)` and the
//! Skolem-term variables of the component's nodes. Columns are laid out in
//! the **sort order** of §3.2 — `L1, V(1,1)…V(1,n1), L2, V(2,1)…` — so the
//! relation's column order *is* its ORDER BY list, and the k-way merge in
//! the tagger can compare tuples from different streams positionally via
//! the global layout.

use sr_data::{DataType, Database};
use sr_viewtree::{NodeId, ReducedComponent, VarId, ViewTree};

/// One column of a partitioned relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnSpec {
    /// A level label `L{p}`.
    Level(u16),
    /// A Skolem-term variable `v{p}_{q}`.
    Var(VarId),
}

impl ColumnSpec {
    /// The column's name in generated SQL and result schemas.
    pub fn name(&self, tree: &ViewTree) -> String {
        match self {
            ColumnSpec::Level(p) => format!("L{p}"),
            ColumnSpec::Var(v) => tree.var(*v).plan_name(),
        }
    }

    /// The level this column belongs to in the interleaved sort order.
    pub fn level(&self, tree: &ViewTree) -> u16 {
        match self {
            ColumnSpec::Level(p) => *p,
            ColumnSpec::Var(v) => tree.var(*v).index.0,
        }
    }
}

/// The table a tuple-variable alias ranges over, found by scanning bodies.
pub fn alias_table<'t>(tree: &'t ViewTree, alias: &str) -> Option<&'t str> {
    tree.nodes
        .iter()
        .flat_map(|n| n.body.atoms.iter())
        .find(|a| a.alias == alias)
        .map(|a| a.table.as_str())
}

/// The data type of a Skolem-term variable, from the catalog.
pub fn var_dtype(tree: &ViewTree, db: &Database, v: VarId) -> DataType {
    let var = tree.var(v);
    alias_table(tree, &var.alias)
        .and_then(|t| db.table(t).ok())
        .and_then(|t| {
            t.schema()
                .position(&var.column)
                .map(|i| t.schema().column(i).dtype)
        })
        .unwrap_or(DataType::Str)
}

/// Interleaved column layout for a set of variables and a maximum
/// class-root depth: `L1, V(1,*), L2, V(2,*), …`. Levels beyond
/// `max_label_level` get no `L` column (no branch to distinguish there),
/// but their variables still appear.
fn layout(tree: &ViewTree, vars: &[VarId], max_label_level: u16) -> Vec<ColumnSpec> {
    let max_var_level = vars.iter().map(|&v| tree.var(v).index.0).max().unwrap_or(0);
    let mut cols = Vec::new();
    for p in 1..=max_label_level.max(max_var_level) {
        if p <= max_label_level {
            cols.push(ColumnSpec::Level(p));
        }
        let mut level_vars: Vec<VarId> = vars
            .iter()
            .copied()
            .filter(|&v| tree.var(v).index.0 == p)
            .collect();
        level_vars.sort_by_key(|&v| tree.var(v).index.1);
        cols.extend(level_vars.into_iter().map(ColumnSpec::Var));
    }
    cols
}

/// Column layout of one component's partitioned relation.
pub fn component_columns(tree: &ViewTree, rc: &ReducedComponent) -> Vec<ColumnSpec> {
    let mut vars: Vec<VarId> = Vec::new();
    for class in &rc.nodes {
        for &v in &class.args {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    let max_label = rc
        .nodes
        .iter()
        .map(|c| tree.node(c.root).sfi.len() as u16)
        .max()
        .unwrap_or(1);
    layout(tree, &vars, max_label)
}

/// The *global* layout over the entire view tree — every level label and
/// every variable. The tagger lifts each stream's tuples into this layout
/// to merge streams in document order.
pub fn global_columns(tree: &ViewTree) -> Vec<ColumnSpec> {
    let vars: Vec<VarId> = (0..tree.vars.len()).collect();
    let max_label = tree
        .nodes
        .iter()
        .map(|n| n.sfi.len() as u16)
        .max()
        .unwrap_or(1);
    layout(tree, &vars, max_label)
}

/// The depth (SFI length) of a node.
pub fn depth(tree: &ViewTree, node: NodeId) -> u16 {
    tree.node(node).sfi.len() as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_data::{ForeignKey, Schema, Table};
    use sr_viewtree::{build, components, reduce_component, EdgeSet};

    fn setup() -> (ViewTree, Database) {
        let mut db = Database::new();
        db.add_table(Table::new(
            "Supplier",
            Schema::of(&[
                ("suppkey", DataType::Int),
                ("name", DataType::Str),
                ("nationkey", DataType::Int),
            ]),
        ));
        db.add_table(Table::new(
            "Nation",
            Schema::of(&[("nationkey", DataType::Int), ("name", DataType::Str)]),
        ));
        db.add_table(Table::new(
            "PartSupp",
            Schema::of(&[("partkey", DataType::Int), ("suppkey", DataType::Int)]),
        ));
        db.declare_key("Supplier", &["suppkey"]).unwrap();
        db.declare_key("Nation", &["nationkey"]).unwrap();
        db.declare_key("PartSupp", &["partkey", "suppkey"]).unwrap();
        db.declare_foreign_key(ForeignKey::new(
            "Supplier",
            &["nationkey"],
            "Nation",
            &["nationkey"],
        ))
        .unwrap();
        let q = sr_rxl::parse(
            "from Supplier $s construct <supplier>\
               <name>$s.name</name>\
               { from Nation $n where $s.nationkey = $n.nationkey \
                 construct <nation>$n.name</nation> }\
               { from PartSupp $ps where $s.suppkey = $ps.suppkey \
                 construct <part>$ps.partkey</part> }\
             </supplier>",
        )
        .unwrap();
        let t = build(&q, &db).unwrap();
        (t, db)
    }

    #[test]
    fn unified_component_layout_interleaves() {
        let (t, _db) = setup();
        let full = EdgeSet::full(&t);
        let comps = components(&t, full);
        let rc = reduce_component(&t, &comps[0], full, false);
        let cols = component_columns(&t, &rc);
        let names: Vec<String> = cols.iter().map(|c| c.name(&t)).collect();
        // L1, suppkey(1,1), L2, then the level-2 vars in q order.
        assert_eq!(names[0], "L1");
        assert_eq!(names[1], "v1_1");
        assert_eq!(names[2], "L2");
        assert!(names.len() > 4);
        // Levels never decrease along the layout.
        let mut last = 0;
        for c in &cols {
            let l = c.level(&t);
            assert!(l >= last, "layout must be level-monotone");
            last = l;
        }
    }

    #[test]
    fn single_node_component_has_its_levels() {
        let (t, _db) = setup();
        let empty = EdgeSet::empty();
        let comps = components(&t, empty);
        // Component for the `part` node (a level-2 node).
        let part_comp = comps.iter().find(|c| t.node(c.root).tag == "part").unwrap();
        let rc = reduce_component(&t, part_comp, empty, false);
        let cols = component_columns(&t, &rc);
        let names: Vec<String> = cols.iter().map(|c| c.name(&t)).collect();
        // Carries L1 and L2 plus its own vars (incl. ancestor key suppkey).
        assert!(names.contains(&"L1".to_string()));
        assert!(names.contains(&"L2".to_string()));
        assert!(names.contains(&"v1_1".to_string()));
    }

    #[test]
    fn global_layout_covers_all_vars() {
        let (t, _db) = setup();
        let cols = global_columns(&t);
        let var_count = cols
            .iter()
            .filter(|c| matches!(c, ColumnSpec::Var(_)))
            .count();
        assert_eq!(var_count, t.vars.len());
    }

    #[test]
    fn var_dtype_resolves_from_catalog() {
        let (t, db) = setup();
        // v1_1 is suppkey: Int. Find the s.name var: Str.
        let name_var = (0..t.vars.len())
            .find(|&v| t.var(v).alias == "s" && t.var(v).column == "name")
            .unwrap();
        assert_eq!(var_dtype(&t, &db, name_var), DataType::Str);
        let suppkey = (0..t.vars.len())
            .find(|&v| t.var(v).column == "suppkey")
            .unwrap();
        assert_eq!(var_dtype(&t, &db, suppkey), DataType::Int);
    }

    #[test]
    fn alias_table_lookup() {
        let (t, _db) = setup();
        assert_eq!(alias_table(&t, "s"), Some("Supplier"));
        assert_eq!(alias_table(&t, "ps"), Some("PartSupp"));
        assert_eq!(alias_table(&t, "zz"), None);
    }
}
