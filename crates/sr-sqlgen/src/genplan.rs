//! Plan specifications and end-to-end query generation.
//!
//! A [`PlanSpec`] is the paper's notion of an execution plan: an edge subset
//! (§3.2), whether to apply view-tree reduction (§3.5), and the query style
//! (outer-join, SilkRoute's default, or the outer-union of \[9\]). Generation
//! yields one [`GeneratedQuery`] — plan + SQL text + metadata — per
//! connected component, in stream order.

use sr_data::Database;
use sr_engine::sql::to_sql;
use sr_engine::{EngineError, Plan};
use sr_viewtree::{components, Component, EdgeSet, ReducedComponent, ViewTree};

use crate::outer_join::outer_join_plan;
use crate::outer_union::outer_union_plan;
use crate::relation::{component_columns, ColumnSpec};

/// Which SQL structure to generate for multi-node components (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStyle {
    /// `R ⟕ (S ∪ T)` — SilkRoute's outer-join plans.
    OuterJoin,
    /// `(R ⟕ S) ∪ (R ⟕ T)` — the sorted outer-union of \[9\].
    OuterUnion,
    /// Outer-join structure over per-class `WITH` CTEs (§3.4, footnote 1):
    /// each class's rule body is materialized once as a CTE that joins its
    /// parent's CTE, sharing ancestor work across branches.
    OuterJoinWith,
}

/// A complete plan specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanSpec {
    /// Included view-tree edges; components of this edge set become the SQL
    /// queries.
    pub edges: EdgeSet,
    /// Apply view-tree reduction inside each component.
    pub reduce: bool,
    /// SQL structure.
    pub style: QueryStyle,
}

impl PlanSpec {
    /// The unified plan (one SQL query), reduced, outer-join style.
    pub fn unified(tree: &ViewTree) -> PlanSpec {
        PlanSpec {
            edges: EdgeSet::full(tree),
            reduce: true,
            style: QueryStyle::OuterJoin,
        }
    }

    /// The fully partitioned plan (one SQL query per node).
    pub fn fully_partitioned() -> PlanSpec {
        PlanSpec {
            edges: EdgeSet::empty(),
            reduce: true,
            style: QueryStyle::OuterJoin,
        }
    }

    /// The unified **sorted outer-union** plan of Shanmugasundaram et al.
    /// \[9\] — the paper's external baseline. It predates SilkRoute's
    /// view-tree reduction, so it is generated non-reduced: one union
    /// branch (and one tuple) per element instance of every node.
    pub fn sorted_outer_union(tree: &ViewTree) -> PlanSpec {
        PlanSpec {
            edges: EdgeSet::full(tree),
            reduce: false,
            style: QueryStyle::OuterUnion,
        }
    }
}

/// One generated SQL query (= one tuple stream) of a plan.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// The component this query computes.
    pub component: Component,
    /// The (possibly reduced) class tree, needed by the tagger.
    pub reduced: ReducedComponent,
    /// Executable plan (already projected to the §3.2 layout and sorted).
    pub plan: Plan,
    /// The SQL text shipped to the server.
    pub sql: String,
    /// The relation layout (column ↔ level-label/variable mapping).
    pub columns: Vec<ColumnSpec>,
}

/// Generate the SQL queries for a plan specification, in stream order
/// (preorder of component roots).
pub fn generate_queries(
    tree: &ViewTree,
    db: &Database,
    spec: PlanSpec,
) -> Result<Vec<GeneratedQuery>, EngineError> {
    generate_queries_filtered(tree, db, spec, &[])
}

/// Like [`generate_queries`], with an equality filter on **root-element key
/// variables** applied to every component query — the paper's §7 fragment
/// scenario ("a user query requests only a subset of the XML view"): export
/// just the elements under matching root instances. Every component carries
/// the root keys, and the server's predicate pushdown drives the filter
/// into the base scans.
pub fn generate_queries_filtered(
    tree: &ViewTree,
    db: &Database,
    spec: PlanSpec,
    root_filter: &[(sr_viewtree::VarId, sr_data::Value)],
) -> Result<Vec<GeneratedQuery>, EngineError> {
    for (v, _) in root_filter {
        if !tree.node(tree.root()).key_args.contains(v) {
            return Err(EngineError::InvalidPlan(format!(
                "fragment filter variable {} is not a root key",
                tree.var(*v).plan_name()
            )));
        }
    }
    let comps = components(tree, spec.edges);
    let mut out = Vec::with_capacity(comps.len());
    for component in comps {
        let reduced = sr_viewtree::reduce_component(tree, &component, spec.edges, spec.reduce);
        let mut plan = match spec.style {
            QueryStyle::OuterJoin => outer_join_plan(tree, &reduced, db)?,
            QueryStyle::OuterUnion => outer_union_plan(tree, &reduced, db)?,
            QueryStyle::OuterJoinWith => {
                crate::outer_join_with::outer_join_with_plan(tree, &reduced, db)?
            }
        };
        if !root_filter.is_empty() {
            // Insert the filter below the final sort so the stream stays
            // ordered; pushdown happens server-side.
            let preds: Vec<sr_engine::Predicate> = root_filter
                .iter()
                .map(|(v, value)| {
                    sr_engine::Predicate::new(
                        sr_engine::Expr::col(tree.var(*v).plan_name()),
                        sr_engine::CmpOp::Eq,
                        sr_engine::Expr::Lit(value.clone()),
                    )
                })
                .collect();
            fn inject(plan: Plan, preds: Vec<sr_engine::Predicate>) -> Plan {
                match plan {
                    Plan::Sort { input, keys } => input.filter(preds).sort(keys),
                    Plan::With { ctes, body } => Plan::With {
                        ctes,
                        body: Box::new(inject(*body, preds)),
                    },
                    other => other.filter(preds),
                }
            }
            plan = inject(plan, preds);
        }
        let sql = to_sql(&plan, db)?;
        let columns = component_columns(tree, &reduced);
        out.push(GeneratedQuery {
            component,
            reduced,
            plan,
            sql,
            columns,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_data::{row, DataType, ForeignKey, Schema, Table};
    use sr_engine::{execute, Server};
    use sr_viewtree::build;
    use std::sync::Arc;

    fn setup() -> (ViewTree, Database) {
        let mut db = Database::new();
        let mut s = Table::new(
            "Supplier",
            Schema::of(&[
                ("suppkey", DataType::Int),
                ("name", DataType::Str),
                ("nationkey", DataType::Int),
            ]),
        );
        s.insert_all([row![1i64, "A", 10i64], row![2i64, "B", 20i64]])
            .unwrap();
        let mut n = Table::new(
            "Nation",
            Schema::of(&[("nationkey", DataType::Int), ("name", DataType::Str)]),
        );
        n.insert_all([row![10i64, "USA"], row![20i64, "Spain"]])
            .unwrap();
        let mut ps = Table::new(
            "PartSupp",
            Schema::of(&[("partkey", DataType::Int), ("suppkey", DataType::Int)]),
        );
        ps.insert_all([row![7i64, 1i64], row![8i64, 1i64]]).unwrap();
        db.add_table(s);
        db.add_table(n);
        db.add_table(ps);
        db.declare_key("Supplier", &["suppkey"]).unwrap();
        db.declare_key("Nation", &["nationkey"]).unwrap();
        db.declare_key("PartSupp", &["partkey", "suppkey"]).unwrap();
        db.declare_foreign_key(ForeignKey::new(
            "Supplier",
            &["nationkey"],
            "Nation",
            &["nationkey"],
        ))
        .unwrap();
        let q = sr_rxl::parse(
            "from Supplier $s construct <supplier>\
               <name>$s.name</name>\
               { from Nation $n where $s.nationkey = $n.nationkey \
                 construct <nation>$n.name</nation> }\
               { from PartSupp $ps where $s.suppkey = $ps.suppkey \
                 construct <part>$ps.partkey</part> }\
             </supplier>",
        )
        .unwrap();
        let t = build(&q, &db).unwrap();
        (t, db)
    }

    #[test]
    fn unified_spec_generates_one_query() {
        let (t, db) = setup();
        let qs = generate_queries(&t, &db, PlanSpec::unified(&t)).unwrap();
        assert_eq!(qs.len(), 1);
        assert!(qs[0].sql.starts_with("SELECT"));
        assert!(qs[0].sql.contains("ORDER BY"));
    }

    #[test]
    fn fully_partitioned_generates_one_query_per_node() {
        let (t, db) = setup();
        let qs = generate_queries(&t, &db, PlanSpec::fully_partitioned()).unwrap();
        assert_eq!(qs.len(), t.nodes.len());
        // Stream order follows preorder of component roots.
        let roots: Vec<usize> = qs.iter().map(|q| q.component.root).collect();
        assert_eq!(roots, vec![0, 1, 2, 3]);
    }

    #[test]
    fn generated_sql_executes_on_the_server() {
        let (t, db) = setup();
        let server = Server::new(Arc::new(db));
        for spec in [
            PlanSpec::unified(&ViewTree {
                nodes: t.nodes.clone(),
                vars: t.vars.clone(),
            }),
            PlanSpec::fully_partitioned(),
            PlanSpec::sorted_outer_union(&ViewTree {
                nodes: t.nodes.clone(),
                vars: t.vars.clone(),
            }),
        ] {
            let qs = generate_queries(&t, server.database(), spec).unwrap();
            for q in qs {
                let stream = server
                    .execute_sql(&q.sql)
                    .unwrap_or_else(|e| panic!("SQL failed ({e}): {}", q.sql));
                // Server result matches direct plan execution.
                let direct = execute(&q.plan, server.database()).unwrap();
                assert_eq!(stream.row_count, direct.rows.len());
                let rows = stream.collect_rows().unwrap();
                assert_eq!(rows, direct.rows, "wire vs direct for {}", q.sql);
            }
        }
    }

    #[test]
    fn outer_join_vs_outer_union_sql_shapes() {
        let (t, db) = setup();
        let oj = generate_queries(&t, &db, PlanSpec::unified(&t)).unwrap();
        let ou = generate_queries(&t, &db, PlanSpec::sorted_outer_union(&t)).unwrap();
        assert!(oj[0].sql.contains("LEFT OUTER JOIN"), "{}", oj[0].sql);
        assert!(ou[0].sql.contains("UNION ALL"), "{}", ou[0].sql);
        assert!(!ou[0].sql.contains("LEFT OUTER JOIN"), "{}", ou[0].sql);
    }

    #[test]
    fn all_512_like_enumeration_generates_valid_sql() {
        let (t, db) = setup();
        let server = Server::new(Arc::new(db));
        let mut total = 0;
        for edges in sr_viewtree::all_edge_sets(&t) {
            for reduce in [false, true] {
                let spec = PlanSpec {
                    edges,
                    reduce,
                    style: QueryStyle::OuterJoin,
                };
                let qs = generate_queries(&t, server.database(), spec).unwrap();
                assert_eq!(qs.len(), t.edge_count() - edges.len() + 1);
                for q in &qs {
                    server
                        .execute_sql(&q.sql)
                        .unwrap_or_else(|e| panic!("{e}: {}", q.sql));
                }
                total += qs.len();
            }
        }
        assert!(total > 0);
    }
}
