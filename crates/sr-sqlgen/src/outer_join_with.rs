//! `WITH`-clause plan construction (paper §3.4, footnote 1: "We also can
//! use the SQL 'with' clause to construct partitioned relations").
//!
//! The plain outer-join translation evaluates each class's **full** rule
//! body — so a child class re-joins every ancestor relation its scope
//! mentions. Here each class becomes a CTE defined *incrementally*: the
//! root class materializes its body once, and every child CTE joins its
//! parent's CTE with only the atoms its block adds, on the block's linking
//! conditions. The engine evaluates each CTE exactly once, so ancestor
//! join work is shared across all sibling branches — the genuine saving
//! the with-clause buys.
//!
//! CTE output columns: the class's Skolem arguments under their `v{p}_{q}`
//! names, plus any parent-body fields that descendant blocks' conditions
//! reference (exported under `alias_col` names, threaded down the chain).

use std::collections::HashMap;

use sr_data::Database;
use sr_engine::{CmpOp, EngineError, Expr, JoinKind, Plan, Predicate};
use sr_rxl::RxlCmp;
use sr_viewtree::{BodyOperand, ReducedComponent, ViewTree};

use crate::body::{body_plan, field_col};
use crate::outer_join::{assemble, BaseFn, IdentityFn};

/// A relational field `(alias, column)`.
type Field = (String, String);

/// Build the WITH-style outer-join plan for one reduced component.
/// Single-class components degrade to the plain translation (a CTE would
/// add nothing).
pub fn outer_join_with_plan(
    tree: &ViewTree,
    rc: &ReducedComponent,
    db: &Database,
) -> Result<Plan, EngineError> {
    if rc.nodes.len() == 1 {
        return crate::outer_join::outer_join_plan(tree, rc, db);
    }

    // ---- 1. Per-class requirements: parent-body fields referenced by the
    // class's extra predicates, propagated up the chain to whichever
    // ancestor binds the alias locally.
    let n = rc.nodes.len();
    let mut required: Vec<Vec<Field>> = vec![Vec::new(); n];
    for idx in 1..n {
        let class = &rc.nodes[idx];
        let parent = class.parent.expect("non-root class");
        let parent_body = &rc.nodes[parent].body;
        let local: Vec<&str> = class
            .body
            .extra_atoms(parent_body)
            .iter()
            .map(|a| a.alias.as_str())
            .collect();
        // Ancestor-resident fields this class needs: operands of its extra
        // predicates AND the fields behind its own Skolem-argument
        // variables (e.g. a merged `<name>$s.name</name>` child whose
        // content variable lives on the parent's tuple variable).
        let mut needed: Vec<Field> = Vec::new();
        for pred in class.body.extra_preds(parent_body) {
            for op in [&pred.left, &pred.right] {
                if let Some((a, c)) = op.as_field() {
                    if !local.contains(&a) {
                        needed.push((a.to_string(), c.to_string()));
                    }
                }
            }
        }
        for &v in &class.args {
            let var = tree.var(v);
            if !local.contains(&var.alias.as_str()) && parent_body.binds(&var.alias) {
                needed.push((var.alias.clone(), var.column.clone()));
            }
        }
        for (a, c) in needed {
            // Record on every class from the parent up to the binder.
            let mut j = parent;
            loop {
                let f = (a.clone(), c.clone());
                if !required[j].contains(&f) {
                    required[j].push(f);
                }
                let binds_locally = match rc.nodes[j].parent {
                    Some(p) => !rc.nodes[p].body.binds(&a),
                    None => true,
                };
                if binds_locally {
                    break;
                }
                j = rc.nodes[j].parent.expect("checked");
            }
        }
    }

    // ---- 2. Export lists: v-named args first, then required extra fields
    // (skipping fields already covered by an arg's canonical field).
    // exports[idx] = (output column, source field).
    let mut exports: Vec<Vec<(String, Field)>> = Vec::with_capacity(n);
    for (idx, class) in rc.nodes.iter().enumerate() {
        let mut list: Vec<(String, Field)> = class
            .args
            .iter()
            .map(|&v| {
                let var = tree.var(v);
                (var.plan_name(), (var.alias.clone(), var.column.clone()))
            })
            .collect();
        for f in &required[idx] {
            if !list.iter().any(|(_, ef)| ef == f) {
                list.push((field_col(&f.0, &f.1), f.clone()));
            }
        }
        exports.push(list);
    }

    // ---- 3. Build the CTE definitions, parents before children.
    let cte_name = |idx: usize| format!("cte{idx}");
    let mut ctes: Vec<(String, Plan)> = Vec::with_capacity(n);
    let mut cte_schemas = Vec::with_capacity(n);
    for idx in 0..n {
        let class = &rc.nodes[idx];
        let (plan, env) = match class.parent {
            None => {
                // Root class: its full body, evaluated once.
                let plan = body_plan(&class.body)?;
                let mut env: HashMap<Field, String> = HashMap::new();
                for atom in &class.body.atoms {
                    if let Ok(t) = db.table(&atom.table) {
                        for c in t.schema().names() {
                            env.insert(
                                (atom.alias.clone(), c.to_string()),
                                field_col(&atom.alias, c),
                            );
                        }
                    }
                }
                (plan, env)
            }
            Some(parent) => {
                // Child class: parent CTE ⋈ the block's extra atoms.
                let parent_schema: &sr_data::Schema = &cte_schemas[parent];
                let mut palias_probe = "p".to_string();
                while class.body.binds(&palias_probe) {
                    palias_probe.push('_');
                }
                let mut env: HashMap<Field, String> = HashMap::new();
                for (outcol, field) in &exports[parent] {
                    env.insert(field.clone(), format!("{palias_probe}_{outcol}"));
                }
                // A parent alias that cannot collide with RXL tuple
                // variables in this class's body.
                let mut palias = "p".to_string();
                while class.body.binds(&palias) {
                    palias.push('_');
                }
                let start = Plan::CteScan {
                    cte: cte_name(parent),
                    alias: palias.clone(),
                    schema: parent_schema.clone(),
                };
                let parent_body = rc.nodes[parent].body.clone();
                let atoms: Vec<_> = class
                    .body
                    .extra_atoms(&parent_body)
                    .into_iter()
                    .cloned()
                    .collect();
                let preds: Vec<_> = class
                    .body
                    .extra_preds(&parent_body)
                    .into_iter()
                    .cloned()
                    .collect();
                join_increment(db, start, env, &atoms, &preds)?
            }
        };
        // Project the export list.
        let items = exports[idx]
            .iter()
            .map(|(out, field)| {
                let col = env.get(field).ok_or_else(|| {
                    EngineError::InvalidPlan(format!(
                        "field {}.{} unavailable in CTE for class {idx}",
                        field.0, field.1
                    ))
                })?;
                Ok((out.clone(), Expr::col(col.clone())))
            })
            .collect::<Result<Vec<_>, EngineError>>()?;
        let def = plan.project(items);
        cte_schemas.push(def.schema(db)?);
        ctes.push((cte_name(idx), def));
    }

    // ---- 4. Assemble the component body over CteScans of the classes.
    let base: BaseFn = &|idx, parent_depth| {
        let class = &rc.nodes[idx];
        let root = tree.node(class.root);
        let alias = format!("c{idx}");
        let scan = Plan::CteScan {
            cte: cte_name(idx),
            alias: alias.clone(),
            schema: cte_schemas[idx].clone(),
        };
        let mut items: Vec<(String, Expr)> = Vec::new();
        for p in (parent_depth + 1)..=(root.sfi.len() as u16) {
            items.push((format!("L{p}"), Expr::lit(root.sfi[p as usize - 1] as i64)));
        }
        for &v in &class.args {
            let name = tree.var(v).plan_name();
            items.push((name.clone(), Expr::col(format!("{alias}_{name}"))));
        }
        Ok(scan.project(items))
    };
    let identity: IdentityFn = &|idx| {
        let class = &rc.nodes[idx];
        let root = tree.node(class.root);
        let alias = format!("i{idx}");
        let scan = Plan::CteScan {
            cte: cte_name(idx),
            alias: alias.clone(),
            schema: cte_schemas[idx].clone(),
        };
        Ok(scan.project(
            root.key_args
                .iter()
                .map(|&v| {
                    let name = tree.var(v).plan_name();
                    (name.clone(), Expr::col(format!("{alias}_{name}")))
                })
                .collect(),
        ))
    };
    let body = assemble(tree, rc, db, base, identity)?;
    Ok(Plan::With {
        ctes,
        body: Box::new(body),
    })
}

fn cmp_op(op: RxlCmp) -> CmpOp {
    match op {
        RxlCmp::Eq => CmpOp::Eq,
        RxlCmp::Ne => CmpOp::Ne,
        RxlCmp::Lt => CmpOp::Lt,
        RxlCmp::Le => CmpOp::Le,
        RxlCmp::Gt => CmpOp::Gt,
        RxlCmp::Ge => CmpOp::Ge,
    }
}

/// Join `atoms` onto `start` using `preds`: equality predicates whose sides
/// resolve on the two sides become hash-join keys (greedy, connected atoms
/// first); everything else becomes a filter once all its fields resolve.
/// Returns the joined plan and the extended field → column environment.
fn join_increment(
    db: &Database,
    start: Plan,
    mut env: HashMap<Field, String>,
    atoms: &[sr_viewtree::Atom],
    preds: &[sr_viewtree::BodyPred],
) -> Result<(Plan, HashMap<Field, String>), EngineError> {
    let operand_field = |o: &BodyOperand| -> Option<Field> {
        o.as_field().map(|(a, c)| (a.to_string(), c.to_string()))
    };
    let mut plan = start;
    let mut pending: Vec<&sr_viewtree::Atom> = atoms.iter().collect();
    let mut used = vec![false; preds.len()];

    while !pending.is_empty() {
        // Prefer an atom connected by an unused equality to the current env.
        let pick = pending
            .iter()
            .position(|atom| {
                preds.iter().enumerate().any(|(i, p)| {
                    if used[i] {
                        return false;
                    }
                    match (operand_field(&p.left), operand_field(&p.right)) {
                        (Some(l), Some(r)) if p.op == RxlCmp::Eq => {
                            (env.contains_key(&l) && r.0 == atom.alias)
                                || (env.contains_key(&r) && l.0 == atom.alias)
                        }
                        _ => false,
                    }
                })
            })
            .unwrap_or(0);
        let atom = pending.remove(pick);
        let mut keys = Vec::new();
        for (i, p) in preds.iter().enumerate() {
            if used[i] {
                continue;
            }
            if let (Some(l), Some(r)) = (operand_field(&p.left), operand_field(&p.right)) {
                if p.op == RxlCmp::Eq {
                    if env.contains_key(&l) && r.0 == atom.alias {
                        keys.push((env[&l].clone(), field_col(&r.0, &r.1)));
                        used[i] = true;
                    } else if env.contains_key(&r) && l.0 == atom.alias {
                        keys.push((env[&r].clone(), field_col(&l.0, &l.1)));
                        used[i] = true;
                    }
                }
            }
        }
        plan = plan.join(
            Plan::scan(atom.table.clone(), atom.alias.clone()),
            JoinKind::Inner,
            keys,
        );
        let t = db.table(&atom.table)?;
        for c in t.schema().names() {
            env.insert(
                (atom.alias.clone(), c.to_string()),
                field_col(&atom.alias, c),
            );
        }
    }

    // Remaining predicates become filters, with fields rewritten via env.
    let mut filters = Vec::new();
    for (i, p) in preds.iter().enumerate() {
        if used[i] {
            continue;
        }
        let to_expr = |o: &BodyOperand| -> Result<Expr, EngineError> {
            Ok(match o {
                BodyOperand::Field { alias, column } => {
                    let f = (alias.clone(), column.clone());
                    Expr::col(env.get(&f).cloned().ok_or_else(|| {
                        EngineError::InvalidPlan(format!(
                            "predicate field {alias}.{column} not exported to this CTE"
                        ))
                    })?)
                }
                BodyOperand::Int(i) => Expr::lit(*i),
                BodyOperand::Float(x) => Expr::lit(*x),
                BodyOperand::Str(s) => Expr::lit(s.as_str()),
            })
        };
        filters.push(Predicate::new(
            to_expr(&p.left)?,
            cmp_op(p.op),
            to_expr(&p.right)?,
        ));
    }
    Ok((plan.filter(filters), env))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genplan::{generate_queries, PlanSpec, QueryStyle};
    use sr_engine::execute;
    use sr_tpch::{generate, Scale};
    use sr_viewtree::{build, components, reduce_component, EdgeSet};

    fn setup() -> (ViewTree, Database) {
        let db = generate(Scale::mb(0.05)).unwrap();
        let q = sr_rxl::parse(
            "from Supplier $s construct <supplier>\
               <name>$s.name</name>\
               { from Nation $n where $s.nationkey = $n.nationkey \
                 construct <nation>$n.name</nation> }\
               { from PartSupp $ps, Part $p \
                 where $s.suppkey = $ps.suppkey, $ps.partkey = $p.partkey \
                 construct <part>$p.name</part> }\
             </supplier>",
        )
        .unwrap();
        let tree = build(&q, &db).unwrap();
        (tree, db)
    }

    #[test]
    fn with_plan_matches_plain_plan() {
        let (tree, db) = setup();
        for reduce in [false, true] {
            for edges in sr_viewtree::all_edge_sets(&tree) {
                let comps = components(&tree, edges);
                for comp in &comps {
                    let rc = reduce_component(&tree, comp, edges, reduce);
                    let plain = crate::outer_join::outer_join_plan(&tree, &rc, &db).unwrap();
                    let with = outer_join_with_plan(&tree, &rc, &db).unwrap();
                    let a = execute(&plain, &db).unwrap();
                    let b = execute(&with, &db).unwrap();
                    assert_eq!(
                        a.schema.names().collect::<Vec<_>>(),
                        b.schema.names().collect::<Vec<_>>(),
                        "edges={edges} reduce={reduce}"
                    );
                    assert_eq!(a.rows, b.rows, "edges={edges} reduce={reduce}");
                }
            }
        }
    }

    #[test]
    fn with_sql_contains_with_clause() {
        let (tree, db) = setup();
        let qs = generate_queries(
            &tree,
            &db,
            PlanSpec {
                edges: EdgeSet::full(&tree),
                reduce: false,
                style: QueryStyle::OuterJoinWith,
            },
        )
        .unwrap();
        assert_eq!(qs.len(), 1);
        assert!(qs[0].sql.starts_with("WITH cte0 AS ("), "{}", qs[0].sql);
        assert!(qs[0].sql.contains("cte1"), "{}", qs[0].sql);
        // Child CTEs reference the parent CTE instead of re-joining its body.
        assert!(qs[0].sql.contains("FROM cte0 p"), "{}", qs[0].sql);
    }

    #[test]
    fn with_sql_executes_on_server() {
        let (tree, db) = setup();
        let server = sr_engine::Server::new(std::sync::Arc::new(db));
        let qs = generate_queries(
            &tree,
            server.database(),
            PlanSpec {
                edges: EdgeSet::full(&tree),
                reduce: true,
                style: QueryStyle::OuterJoinWith,
            },
        )
        .unwrap();
        for q in qs {
            let stream = server
                .execute_sql(&q.sql)
                .unwrap_or_else(|e| panic!("{e}: {}", q.sql));
            let direct = execute(&q.plan, server.database()).unwrap();
            assert_eq!(stream.collect_rows().unwrap(), direct.rows);
        }
    }

    #[test]
    fn single_class_component_needs_no_cte() {
        let (tree, db) = setup();
        let edges = EdgeSet::empty();
        let comps = components(&tree, edges);
        let rc = reduce_component(&tree, &comps[0], edges, true);
        let plan = outer_join_with_plan(&tree, &rc, &db).unwrap();
        assert!(!matches!(plan, Plan::With { .. }));
    }
}
