//! Sorted outer-union query plans (Shanmugasundaram et al. \[9\], paper §3.4).
//!
//! "(R ⟕ S) ∪ (R ⟕ T)" — one union branch per class, each a self-contained
//! select over the class's full rule body (which already contains every
//! ancestor join), tagged with its complete `L1…Ld` literal prefix. Parent
//! element instances get their **own** tuples (unlike the outer-join plan,
//! where parent columns ride along on child tuples); NULL-first sorting
//! places each parent tuple immediately before its children.

use sr_data::Database;
use sr_engine::{EngineError, Plan};
use sr_viewtree::{ReducedComponent, ViewTree};

use crate::outer_join::{class_base, finalize};

/// Build the outer-union plan for one reduced component (final projection
/// and sort included).
pub fn outer_union_plan(
    tree: &ViewTree,
    rc: &ReducedComponent,
    db: &Database,
) -> Result<Plan, EngineError> {
    let branches = (0..rc.nodes.len())
        .map(|idx| class_base(tree, rc, idx, 0))
        .collect::<Result<Vec<_>, _>>()?;
    let plan = if branches.len() == 1 {
        branches.into_iter().next().expect("one branch")
    } else {
        Plan::OuterUnion { inputs: branches }
    };
    finalize(tree, rc, plan, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_data::{row, DataType, ForeignKey, Schema, Table, Value};
    use sr_engine::execute;
    use sr_viewtree::{build, components, reduce_component, EdgeSet};

    fn setup() -> (ViewTree, Database) {
        let mut db = Database::new();
        let mut s = Table::new(
            "Supplier",
            Schema::of(&[
                ("suppkey", DataType::Int),
                ("name", DataType::Str),
                ("nationkey", DataType::Int),
            ]),
        );
        s.insert_all([
            row![1i64, "USA Metalworks", 24i64],
            row![2i64, "Romana Espanola", 3i64],
        ])
        .unwrap();
        let mut n = Table::new(
            "Nation",
            Schema::of(&[("nationkey", DataType::Int), ("name", DataType::Str)]),
        );
        n.insert_all([row![24i64, "USA"], row![3i64, "Spain"]])
            .unwrap();
        let mut ps = Table::new(
            "PartSupp",
            Schema::of(&[("partkey", DataType::Int), ("suppkey", DataType::Int)]),
        );
        ps.insert_all([row![4i64, 1i64], row![12i64, 1i64]])
            .unwrap();
        db.add_table(s);
        db.add_table(n);
        db.add_table(ps);
        db.declare_key("Supplier", &["suppkey"]).unwrap();
        db.declare_key("Nation", &["nationkey"]).unwrap();
        db.declare_key("PartSupp", &["partkey", "suppkey"]).unwrap();
        db.declare_foreign_key(ForeignKey::new(
            "Supplier",
            &["nationkey"],
            "Nation",
            &["nationkey"],
        ))
        .unwrap();
        let q = sr_rxl::parse(
            "from Supplier $s construct <supplier>\
               { from Nation $n where $s.nationkey = $n.nationkey \
                 construct <nation>$n.name</nation> }\
               { from PartSupp $ps where $s.suppkey = $ps.suppkey \
                 construct <part>$ps.partkey</part> }\
             </supplier>",
        )
        .unwrap();
        let t = build(&q, &db).unwrap();
        (t, db)
    }

    #[test]
    fn union_has_one_tuple_per_element_instance() {
        let (t, db) = setup();
        let full = EdgeSet::full(&t);
        let comps = components(&t, full);
        let rc = reduce_component(&t, &comps[0], full, false);
        let plan = outer_union_plan(&t, &rc, &db).unwrap();
        let rs = execute(&plan, &db).unwrap();
        // Elements: 2 suppliers + 2 nations + 2 parts = 6 tuples.
        assert_eq!(rs.len(), 6);
    }

    #[test]
    fn parent_tuples_sort_before_children() {
        let (t, db) = setup();
        let full = EdgeSet::full(&t);
        let comps = components(&t, full);
        let rc = reduce_component(&t, &comps[0], full, false);
        let plan = outer_union_plan(&t, &rc, &db).unwrap();
        let rs = execute(&plan, &db).unwrap();
        let l2 = rs.schema.position("L2").unwrap();
        let k = rs.schema.position("v1_1").unwrap();
        // First tuple: supplier 1's own row (L2 NULL), then its children.
        assert_eq!(rs.rows[0].get(k), &Value::Int(1));
        assert!(rs.rows[0].get(l2).is_null());
        assert_eq!(rs.rows[1].get(l2), &Value::Int(1), "nation child next");
    }

    #[test]
    fn outer_union_and_outer_join_cover_same_children() {
        let (t, db) = setup();
        let full = EdgeSet::full(&t);
        let comps = components(&t, full);
        let rc = reduce_component(&t, &comps[0], full, false);
        let ou = execute(&outer_union_plan(&t, &rc, &db).unwrap(), &db).unwrap();
        let oj = execute(
            &crate::outer_join::outer_join_plan(&t, &rc, &db).unwrap(),
            &db,
        )
        .unwrap();
        // Same schemas (the §3.2 layout) and the same non-NULL child rows.
        assert_eq!(
            ou.schema.names().collect::<Vec<_>>(),
            oj.schema.names().collect::<Vec<_>>()
        );
        let l2 = ou.schema.position("L2").unwrap();
        let child_rows =
            |rows: &[sr_data::Row]| rows.iter().filter(|r| !r.get(l2).is_null()).count();
        assert_eq!(child_rows(&ou.rows), child_rows(&oj.rows));
    }

    #[test]
    fn reduced_outer_union_merges_one_classes() {
        let (t, db) = setup();
        let full = EdgeSet::full(&t);
        let comps = components(&t, full);
        let rc = reduce_component(&t, &comps[0], full, true);
        assert_eq!(rc.nodes.len(), 2);
        let plan = outer_union_plan(&t, &rc, &db).unwrap();
        let rs = execute(&plan, &db).unwrap();
        // supplier+nation rows (2) + part rows (2).
        assert_eq!(rs.len(), 4);
    }
}
