#![warn(missing_docs)]
//! # sr-sqlgen
//!
//! SQL generation from partitioned view trees ("Efficient Evaluation of XML
//! Middle-ware Queries", SIGMOD 2001, §3.2/§3.4): each connected component
//! of a chosen edge subset becomes one SQL query producing a sorted
//! *partitioned relation* whose schema is `L1…Lmax` level labels plus the
//! component's Skolem-term variables, laid out in global sort order.
//!
//! Two query structures are provided:
//!
//! * [`outer_join::outer_join_plan`] — SilkRoute's default
//!   `R ⟕ (S ∪ T)` plans;
//! * [`outer_union::outer_union_plan`] — the sorted outer-union
//!   `(R ⟕ S) ∪ (R ⟕ T)` of Shanmugasundaram et al. \[9\].
//!
//! [`generate_queries`] drives the whole translation for a [`PlanSpec`].

pub mod body;
pub mod genplan;
pub mod outer_join;
pub mod outer_join_with;
pub mod outer_union;
pub mod relation;

pub use body::body_plan;
pub use genplan::{
    generate_queries, generate_queries_filtered, GeneratedQuery, PlanSpec, QueryStyle,
};
pub use outer_join::outer_join_plan;
pub use outer_join_with::outer_join_with_plan;
pub use outer_union::outer_union_plan;
pub use relation::{component_columns, global_columns, var_dtype, ColumnSpec};
