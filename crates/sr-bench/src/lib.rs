//! Shared infrastructure for the benchmark harness.
//!
//! Each `benches/*.rs` target regenerates one table or figure of the paper
//! ("Efficient Evaluation of XML Middle-ware Queries", SIGMOD 2001) and
//! prints both the measured rows/series and the paper's reported values for
//! side-by-side comparison. EXPERIMENTS.md records a captured run.

pub mod svg;

use std::sync::Arc;
use std::time::Duration;

use silkroute::{Config, Measurement, Server};
use sr_tpch::generate;
use sr_viewtree::{EdgeSet, ViewTree};

/// Build a server for a configuration, printing the Table-1-style header.
pub fn setup(config: &Config) -> Server {
    println!("{}", config.describe());
    let t = std::time::Instant::now();
    let db = generate(config.scale).expect("TPC-H generation");
    println!(
        "database: {} rows, {} bytes (generated in {:?})\n",
        db.row_count(),
        db.byte_size(),
        t.elapsed()
    );
    Server::new(Arc::new(db))
}

/// The plan-family measurements the figures mark specially.
pub struct Markers {
    /// Unified outer-join plan (1 stream).
    pub unified_oj: Measurement,
    /// Unified sorted outer-union plan (\[9\]).
    pub unified_ou: Measurement,
    /// Fully partitioned plan (one stream per node).
    pub partitioned: Measurement,
}

/// Measure the marker plans for a tree.
pub fn markers(
    tree: &ViewTree,
    server: &Server,
    reduce: bool,
    timeout: Option<Duration>,
) -> Markers {
    use silkroute::{run_plan, PlanSpec, QueryStyle};
    let run = |edges: EdgeSet, style: QueryStyle| {
        run_plan(
            tree,
            server,
            PlanSpec {
                edges,
                reduce,
                style,
            },
            timeout,
        )
        .expect("marker plan")
    };
    // The outer-union marker is the \[9\] baseline: always non-reduced,
    // regardless of the panel's reduction setting.
    let unified_ou = silkroute::run_plan(
        tree,
        server,
        silkroute::PlanSpec::sorted_outer_union(tree),
        timeout,
    )
    .expect("outer-union baseline");
    Markers {
        unified_oj: run(EdgeSet::full(tree), QueryStyle::OuterJoin),
        unified_ou,
        partitioned: run(EdgeSet::empty(), QueryStyle::OuterJoin),
    }
}

/// Minimum of a measurement field over non-timed-out plans.
pub fn min_by(ms: &[Measurement], f: impl Fn(&Measurement) -> f64) -> (f64, u64) {
    ms.iter()
        .filter(|m| !m.timed_out)
        .map(|m| (f(m), m.edge_bits))
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .expect("non-empty sweep")
}

/// Render one figure panel: per-stream-count min/median times plus markers.
pub fn print_panel(title: &str, sweep: &[Measurement], markers: &Markers, query_time: bool) {
    let pick = |m: &Measurement| if query_time { m.query_ms } else { m.total_ms };
    println!("--- {title} ---");
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>9}",
        "streams", "plans", "min (ms)", "median (ms)", "timeouts"
    );
    for b in silkroute::bucket_by_streams(sweep) {
        let (min, med) = if query_time {
            (b.min_query_ms, b.median_query_ms)
        } else {
            (b.min_total_ms, b.median_total_ms)
        };
        println!(
            "{:>8} {:>6} {:>12.1} {:>12.1} {:>9}",
            b.streams, b.plans, min, med, b.timeouts
        );
    }
    let (best, best_bits) = min_by(sweep, pick);
    let timeouts = sweep.iter().filter(|m| m.timed_out).count();
    println!(
        "optimal plan: edges={} at {:.1} ms; {timeouts} plan(s) timed out",
        EdgeSet::from_bits(best_bits),
        best
    );
    println!(
        "unified outer-join : {:>10.1} ms ({:.2}x optimal)",
        pick(&markers.unified_oj),
        pick(&markers.unified_oj) / best
    );
    println!(
        "unified outer-union: {:>10.1} ms ({:.2}x optimal)",
        pick(&markers.unified_ou),
        pick(&markers.unified_ou) / best
    );
    println!(
        "fully partitioned  : {:>10.1} ms ({:.2}x optimal)\n",
        pick(&markers.partitioned),
        pick(&markers.partitioned) / best
    );
}

/// Write a CSV of a sweep next to the bench output for offline plotting.
pub fn write_csv(name: &str, sweep: &[Measurement]) {
    let dir = std::path::Path::new("target/bench-results");
    let _ = std::fs::create_dir_all(dir);
    let mut out = String::from(
        "edge_bits,streams,reduce,style,query_ms,transfer_ms,tag_ms,total_ms,tuples,wire_bytes,timed_out\n",
    );
    for m in sweep {
        out.push_str(&format!(
            "{},{},{},{},{:.3},{:.3},{:.3},{:.3},{},{},{}\n",
            m.edge_bits,
            m.streams,
            m.reduce,
            m.style,
            m.query_ms,
            m.transfer_ms,
            m.tag_ms,
            m.total_ms,
            m.tuples,
            m.wire_bytes,
            m.timed_out
        ));
    }
    let path = dir.join(format!("{name}.csv"));
    if std::fs::write(&path, out).is_ok() {
        println!("(raw data written to {})\n", path.display());
    }
}
