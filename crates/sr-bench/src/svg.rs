//! Minimal SVG scatter plots mirroring the paper's figures: execution time
//! (log scale) vs. number of tuple streams per plan, with the unified
//! outer-join, outer-union and fully-partitioned plans marked.

use std::fmt::Write as _;

use silkroute::Measurement;

/// One marked point.
struct Marked<'a> {
    label: &'a str,
    streams: usize,
    ms: f64,
    color: &'a str,
}

/// Render a Fig. 13/14-style panel to SVG. `query_time` picks the metric.
pub fn scatter_svg(
    title: &str,
    sweep: &[Measurement],
    markers: &crate::Markers,
    query_time: bool,
) -> String {
    let pick = |m: &Measurement| if query_time { m.query_ms } else { m.total_ms };
    let points: Vec<(usize, f64)> = sweep
        .iter()
        .filter(|m| !m.timed_out)
        .map(|m| (m.streams, pick(m)))
        .collect();
    let marked = [
        Marked {
            label: "unified outer-join",
            streams: markers.unified_oj.streams,
            ms: pick(&markers.unified_oj),
            color: "#d62728",
        },
        Marked {
            label: "unified outer-union",
            streams: markers.unified_ou.streams,
            ms: pick(&markers.unified_ou),
            color: "#1f77b4",
        },
        Marked {
            label: "fully partitioned",
            streams: markers.partitioned.streams,
            ms: pick(&markers.partitioned),
            color: "#2ca02c",
        },
    ];

    let (w, h) = (520.0, 360.0);
    let (ml, mr, mt, mb) = (64.0, 16.0, 34.0, 46.0);
    let max_streams = points.iter().map(|p| p.0).max().unwrap_or(10) as f64;
    let y_min = points
        .iter()
        .map(|p| p.1)
        .fold(f64::INFINITY, f64::min)
        .max(1e-3);
    let y_max = points
        .iter()
        .map(|p| p.1)
        .fold(0.0f64, f64::max)
        .max(marked.iter().map(|m| m.ms).fold(0.0, f64::max));
    let (ly0, ly1) = ((y_min * 0.8).log10(), (y_max * 1.25).log10());

    let x = |s: f64| ml + (s - 0.5) / max_streams * (w - ml - mr);
    let y = |ms: f64| {
        let t = (ms.log10() - ly0) / (ly1 - ly0);
        h - mb - t * (h - mt - mb)
    };

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{w}" height="{h}" fill="white"/><text x="{}" y="20" font-family="sans-serif" font-size="14" text-anchor="middle">{title}</text>"#,
        w / 2.0
    );
    // Axes.
    let _ = write!(
        svg,
        r#"<line x1="{ml}" y1="{}" x2="{}" y2="{}" stroke="black"/><line x1="{ml}" y1="{mt}" x2="{ml}" y2="{}" stroke="black"/>"#,
        h - mb,
        w - mr,
        h - mb,
        h - mb
    );
    // X ticks at each stream count.
    for s in 1..=(max_streams as usize) {
        let xs = x(s as f64);
        let _ = write!(
            svg,
            r#"<line x1="{xs}" y1="{}" x2="{xs}" y2="{}" stroke="black"/><text x="{xs}" y="{}" font-family="sans-serif" font-size="10" text-anchor="middle">{s}</text>"#,
            h - mb,
            h - mb + 4.0,
            h - mb + 16.0
        );
    }
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" font-family="sans-serif" font-size="11" text-anchor="middle">SQL queries (tuple streams) per plan</text>"#,
        (ml + w - mr) / 2.0,
        h - 10.0
    );
    // Y ticks at powers of ten (and halves).
    let mut decade = ly0.floor() as i32;
    while (decade as f64) <= ly1 {
        let v = 10f64.powi(decade);
        if v.log10() >= ly0 {
            let ys = y(v);
            let _ = write!(
                svg,
                r##"<line x1="{}" y1="{ys}" x2="{ml}" y2="{ys}" stroke="black"/><text x="{}" y="{}" font-family="sans-serif" font-size="10" text-anchor="end">{v}</text><line x1="{ml}" y1="{ys}" x2="{}" y2="{ys}" stroke="#dddddd"/>"##,
                ml - 4.0,
                ml - 6.0,
                ys + 3.0,
                w - mr
            );
        }
        decade += 1;
    }
    let _ = write!(
        svg,
        r#"<text x="14" y="{}" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 14 {})">time (ms)</text>"#,
        (mt + h - mb) / 2.0,
        (mt + h - mb) / 2.0
    );
    // Plan points.
    for (s, ms) in &points {
        let _ = write!(
            svg,
            r##"<circle cx="{:.1}" cy="{:.1}" r="2" fill="#555555" fill-opacity="0.45"/>"##,
            x(*s as f64),
            y(*ms)
        );
    }
    // Markers + legend.
    for (i, m) in marked.iter().enumerate() {
        let _ = write!(
            svg,
            r#"<circle cx="{:.1}" cy="{:.1}" r="5" fill="none" stroke="{}" stroke-width="2"/>"#,
            x(m.streams as f64),
            y(m.ms),
            m.color
        );
        let ly = mt + 6.0 + i as f64 * 14.0;
        let _ = write!(
            svg,
            r#"<circle cx="{}" cy="{ly}" r="4" fill="none" stroke="{}" stroke-width="2"/><text x="{}" y="{}" font-family="sans-serif" font-size="10">{}</text>"#,
            w - mr - 150.0,
            m.color,
            w - mr - 142.0,
            ly + 3.0,
            m.label
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Write a panel SVG into `target/bench-results/`.
pub fn write_svg(name: &str, svg: &str) {
    let dir = std::path::Path::new("target/bench-results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{name}.svg"));
    if std::fs::write(&path, svg).is_ok() {
        println!("(figure written to {})", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Markers;

    fn meas(streams: usize, ms: f64) -> Measurement {
        Measurement {
            edge_bits: 0,
            streams,
            reduce: true,
            style: "outer-join".into(),
            query_ms: ms,
            transfer_ms: ms * 0.2,
            tag_ms: ms * 0.2,
            total_ms: ms * 1.4,
            tuples: 10,
            wire_bytes: 100,
            xml_bytes: 100,
            timed_out: false,
        }
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let sweep: Vec<Measurement> = (1..=10).map(|s| meas(s, 10.0 + s as f64)).collect();
        let markers = Markers {
            unified_oj: meas(1, 25.0),
            unified_ou: meas(1, 40.0),
            partitioned: meas(10, 30.0),
        };
        let svg = scatter_svg("test panel", &sweep, &markers, true);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(
            svg.matches("<circle").count(),
            10 + 3 + 3,
            "points + markers + legend"
        );
        assert!(svg.contains("test panel"));
        // No NaN coordinates.
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn timed_out_plans_are_skipped() {
        let mut sweep: Vec<Measurement> = (1..=5).map(|s| meas(s, 10.0)).collect();
        sweep[2].timed_out = true;
        sweep[2].query_ms = f64::NAN;
        let markers = Markers {
            unified_oj: meas(1, 25.0),
            unified_ou: meas(1, 40.0),
            partitioned: meas(5, 30.0),
        };
        let svg = scatter_svg("t", &sweep, &markers, true);
        assert!(!svg.contains("NaN"));
    }
}
