//! Ablations for the design decisions DESIGN.md §6 calls out:
//!
//! 1. **Outer-join vs. outer-union structure** (§3.4) across the plan
//!    space: the paper notes the outer-join plan "produces fewer, but
//!    wider, tuples" and conjectures rewriting best plans to outer unions
//!    could improve total time — we measure exactly that.
//! 2. **View-tree reduction on/off** at fixed edge sets (the §3.5
//!    heuristic: "given a set of arbitrary non-reduced plans, the
//!    corresponding set of reduced plans, in general, are more efficient").
//! 3. **Wire/binding share**: tuples and bytes per plan family, explaining
//!    the query-vs-total split.

use silkroute::{query1_tree, run_plan, PlanSpec, QueryStyle};
use sr_viewtree::EdgeSet;

fn main() {
    println!("=== Ablations (Query 1, Configuration A) ===\n");
    let config = silkroute::Config::a();
    let server = sr_bench::setup(&config);
    let tree = query1_tree(server.database());

    // Representative edge sets: unified, best-shape (cut both * edges:
    // 4 = part, 6 = order), fully partitioned.
    let mut cut_stars = EdgeSet::full(&tree);
    cut_stars.remove(4);
    cut_stars.remove(6);
    let families = [
        ("unified", EdgeSet::full(&tree)),
        ("cut-both-*", cut_stars),
        ("fully partitioned", EdgeSet::empty()),
    ];

    println!("-- ablation 1+2: style × reduction (median of 3, total ms) --");
    println!(
        "{:>18} {:>8} | {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>12}",
        "edges",
        "streams",
        "oj+reduce",
        "oj plain",
        "ou+reduce",
        "ou plain",
        "with+reduce",
        "with plain"
    );
    for (label, edges) in families {
        let mut cells = Vec::new();
        let mut streams = 0;
        for style in [
            QueryStyle::OuterJoin,
            QueryStyle::OuterUnion,
            QueryStyle::OuterJoinWith,
        ] {
            for reduce in [true, false] {
                let mut ts: Vec<f64> = (0..3)
                    .map(|_| {
                        let m = run_plan(
                            &tree,
                            &server,
                            PlanSpec {
                                edges,
                                reduce,
                                style,
                            },
                            None,
                        )
                        .expect("plan");
                        streams = m.streams;
                        m.total_ms
                    })
                    .collect();
                ts.sort_by(f64::total_cmp);
                cells.push(ts[1]);
            }
        }
        println!(
            "{label:>18} {streams:>8} | {:>12.1} {:>12.1} | {:>12.1} {:>12.1} | {:>12.1} {:>12.1}",
            cells[0], cells[1], cells[2], cells[3], cells[4], cells[5]
        );
    }

    println!("\n-- ablation 3: per-stage decomposition (reduced outer-join plans) --");
    println!(
        "{:>18} {:>8} {:>10} {:>12} {:>10} {:>9} {:>8} {:>10}",
        "edges", "streams", "tuples", "wire bytes", "query ms", "xfer ms", "tag ms", "total ms"
    );
    for (label, edges) in families {
        let m = run_plan(
            &tree,
            &server,
            PlanSpec {
                edges,
                reduce: true,
                style: QueryStyle::OuterJoin,
            },
            None,
        )
        .expect("plan");
        println!(
            "{label:>18} {:>8} {:>10} {:>12} {:>10.1} {:>9.1} {:>8.1} {:>10.1}",
            m.streams, m.tuples, m.wire_bytes, m.query_ms, m.transfer_ms, m.tag_ms, m.total_ms
        );
    }
    println!(
        "\npaper §4: \"the outer-join plan actually produces fewer, but wider, tuples than the\n\
         outer-union plan; the additional width may induce anomalous caching behavior\""
    );

    // Ablation 4: threshold sensitivity of genPlan (§5.1: "the linear cost
    // function depends primarily on the characteristics of the database
    // environment, and not on the characteristics of the query").
    println!("\n-- ablation 4: genPlan threshold sensitivity (reduced) --");
    println!(
        "{:>12} {:>12} {:>10} {:>9} {:>8} {:>14}",
        "t1", "t2", "mandatory", "optional", "plans", "best total ms"
    );
    let base = silkroute::calibrated_params(config.scale);
    for (f1, f2) in [
        (0.1, 0.1),
        (1.0, 1.0),
        (10.0, 10.0),
        (1.0, 0.0),
        (100.0, 100.0),
    ] {
        let params = silkroute::CostParams {
            t1: base.t1 * f1,
            t2: base.t2 * f2,
            ..base
        };
        let oracle = silkroute::Oracle::new(&server, params);
        let r = silkroute::gen_plan(&tree, server.database(), &oracle, true).expect("genPlan");
        let m = run_plan(
            &tree,
            &server,
            PlanSpec {
                edges: r.recommended(),
                reduce: true,
                style: QueryStyle::OuterJoin,
            },
            None,
        )
        .expect("recommended plan");
        println!(
            "{:>12.0} {:>12.0} {:>10} {:>9} {:>8} {:>14.1}",
            params.t1,
            params.t2,
            r.mandatory.len(),
            r.optional.len(),
            r.plans().len(),
            m.total_ms
        );
    }
    println!("(a stable recommended-plan time across threshold scalings = robust thresholds)");

    // Ablation 5: the §3.3 constant-space claim — the tagger's working set
    // (open-element stack) stays bounded by the view-tree depth while the
    // database, tuple count and document grow linearly.
    println!("\n-- ablation 5: tagger memory vs database size (Q1 unified, reduced) --");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>11}",
        "size MB", "tuples", "XML bytes", "total ms", "peak stack"
    );
    for mb in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let db = sr_tpch::generate(sr_tpch::Scale::mb(mb)).expect("db");
        let server = silkroute::Server::new(std::sync::Arc::new(db));
        let tree = query1_tree(server.database());
        let t = std::time::Instant::now();
        let (info, _) =
            silkroute::materialize(&tree, &server, PlanSpec::unified(&tree), std::io::sink())
                .expect("materialize");
        println!(
            "{mb:>8} {:>10} {:>12} {:>12.1} {:>11}",
            info.stats.tuples,
            info.stats.bytes,
            t.elapsed().as_secs_f64() * 1e3,
            info.stats.max_open_depth
        );
    }
    println!("(peak stack must stay at the view-tree depth — 4 for Query 1 — at every size)");
}
