//! Virtual-view XPath queries (paper §7) vs full materialization.
//!
//! Each path is composed against Query 1's view, pruning the view tree to
//! the subtrees the path touches and pushing its predicates into the
//! component SQL; the pruned tree then runs under the fully partitioned
//! plan (one query per retained node), so both the component-query count
//! and the SQL result bytes shipped from the server shrink with the
//! selectivity of the path. The baseline is the same view fully
//! materialized under the same plan shape.
//!
//! The headline is the **acceptance point**: a path selecting a single
//! part's orders must execute strictly fewer component queries than the
//! full materialization and ship at least 5x fewer bytes of SQL results.
//!
//! Set `SR_BENCH_QUICK=1` for a CI-sized run (small scale, fewer timing
//! iterations). Results land in `target/bench-results/BENCH_xpath.json`;
//! validate with `scripts/validate_machine_output.py xpath <file>`.

use silkroute::{materialize_to_string, query_view, Config, Materialization, PlanSpec};
use sr_obs::Json;
use sr_tpch::Scale;

/// Timed runs per path; bytes and stream counts are deterministic, so the
/// iterations only stabilise the wall-clock fields (min is reported).
const ITERS: usize = 3;

/// What one configuration (full or pruned) measured.
struct Point {
    streams: usize,
    sql_bytes: u64,
    server_ms: f64,
    total_ms: f64,
    doc_bytes: u64,
}

impl Point {
    fn from_materialization(m: &Materialization) -> Point {
        Point {
            streams: m.streams,
            sql_bytes: m.report.streams.iter().map(|s| s.bytes).sum(),
            server_ms: m.report.streams.iter().map(|s| s.server_ms).sum(),
            total_ms: m.report.total_ms,
            doc_bytes: m.stats.bytes,
        }
    }

    /// Keep the deterministic fields, fold in a faster timing observation.
    fn fold_min(&mut self, other: &Point) {
        self.server_ms = self.server_ms.min(other.server_ms);
        self.total_ms = self.total_ms.min(other.total_ms);
    }

    fn to_json(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("streams", Json::UInt(self.streams as u64)),
            ("sql_bytes", Json::UInt(self.sql_bytes)),
            ("server_ms", Json::Float(self.server_ms)),
            ("total_ms", Json::Float(self.total_ms)),
            ("doc_bytes", Json::UInt(self.doc_bytes)),
        ]
    }
}

fn main() {
    let quick = std::env::var("SR_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let config = if quick {
        Config {
            name: "A (quick)",
            scale: Scale::mb(0.2),
            timeout: std::time::Duration::from_secs(300),
        }
    } else {
        Config::a()
    };
    println!("=== XPath over the virtual view vs full materialization ===\n");
    let server = sr_bench::setup(&config);
    let tree = silkroute::query1_tree(server.database());

    // Baseline: the whole view under the fully partitioned plan.
    let mut full = None::<Point>;
    let mut full_doc = String::new();
    for _ in 0..ITERS {
        let (m, doc) = materialize_to_string(&tree, &server, PlanSpec::fully_partitioned())
            .expect("full materialization");
        let p = Point::from_materialization(&m);
        match &mut full {
            Some(f) => f.fold_min(&p),
            None => {
                full = Some(p);
                full_doc = doc;
            }
        }
    }
    let full = full.expect("baseline point");
    println!(
        "full      {:>2} stream(s)  {:>9} SQL byte(s)  server {:>8.2} ms  total {:>8.2} ms",
        full.streams, full.sql_bytes, full.server_ms, full.total_ms
    );

    // The acceptance path selects one part's orders; harvest a part name
    // that actually occurs so the predicate is selective but non-empty.
    let part_name = full_doc
        .split("<part><name>")
        .nth(1)
        .and_then(|s| s.split("</name>").next())
        .expect("a part name in the full document")
        .to_string();

    let paths = [
        ("supplier_names", "/supplier/name".to_string()),
        ("orders_low_key", "//order[orderkey < 100]".to_string()),
        (
            "one_part_orders",
            format!("/supplier/part[name = \"{part_name}\"]/order"),
        ),
    ];

    let mut path_json = Vec::new();
    let mut acceptance = None;
    for (name, xpath) in &paths {
        let mut point = None::<Point>;
        let mut pruned_nodes = 0usize;
        let mut retained_nodes = 0usize;
        for _ in 0..ITERS {
            let (outcome, _doc) = query_view(
                &tree,
                &server,
                xpath,
                |_| PlanSpec::fully_partitioned(),
                Vec::new(),
            )
            .expect("xpath query");
            let m = outcome
                .materialization
                .as_ref()
                .expect("benchmark paths are non-empty");
            pruned_nodes = outcome.pruned_nodes;
            retained_nodes = outcome.retained_nodes;
            let p = Point::from_materialization(m);
            match &mut point {
                Some(best) => best.fold_min(&p),
                None => point = Some(p),
            }
        }
        let p = point.expect("measured point");
        let stream_reduction = full.streams as f64 / p.streams.max(1) as f64;
        let byte_reduction = full.sql_bytes as f64 / (p.sql_bytes.max(1)) as f64;
        println!(
            "{name:<16} {:>2} stream(s)  {:>9} SQL byte(s)  server {:>8.2} ms  \
             total {:>8.2} ms  pruned {pruned_nodes}/{}  ({stream_reduction:.1}x \
             fewer streams, {byte_reduction:.1}x fewer bytes)",
            p.streams,
            p.sql_bytes,
            p.server_ms,
            p.total_ms,
            pruned_nodes + retained_nodes,
        );
        let mut fields = vec![
            ("name", Json::Str(name.to_string())),
            ("xpath", Json::Str(xpath.clone())),
            ("pruned_nodes", Json::UInt(pruned_nodes as u64)),
            ("retained_nodes", Json::UInt(retained_nodes as u64)),
        ];
        fields.extend(p.to_json());
        fields.push(("stream_reduction", Json::Float(stream_reduction)));
        fields.push(("byte_reduction", Json::Float(byte_reduction)));
        path_json.push(Json::obj(fields));
        if *name == "one_part_orders" {
            acceptance = Some((p.streams, stream_reduction, byte_reduction));
        }
    }

    let (acc_streams, acc_stream_red, acc_byte_red) = acceptance.expect("acceptance path measured");
    println!(
        "\nacceptance (one_part_orders): {acc_streams} vs {} stream(s), \
         {acc_byte_red:.1}x fewer SQL result bytes (bar 5x)",
        full.streams
    );

    let mut full_fields = vec![("plan", Json::Str("partitioned".to_string()))];
    full_fields.extend(full.to_json());
    let json = Json::obj(vec![
        ("bench", Json::Str("xpath".to_string())),
        ("config", Json::Str(config.name.to_string())),
        ("quick", Json::Bool(quick)),
        ("scale_mb", Json::Float(config.scale.mb)),
        ("view", Json::Str("query1".to_string())),
        ("iters", Json::UInt(ITERS as u64)),
        ("full", Json::obj(full_fields)),
        ("paths", Json::Arr(path_json)),
        (
            "acceptance",
            Json::obj(vec![
                ("path", Json::Str("one_part_orders".to_string())),
                ("stream_reduction", Json::Float(acc_stream_red)),
                ("byte_reduction", Json::Float(acc_byte_red)),
            ]),
        ),
    ]);
    let dir = std::path::Path::new("target/bench-results");
    std::fs::create_dir_all(dir).expect("create bench-results dir");
    let path = dir.join("BENCH_xpath.json");
    std::fs::write(&path, json.render_pretty() + "\n").expect("write BENCH_xpath.json");
    println!("(machine-readable results written to {})", path.display());
}
