//! Criterion microbenchmarks for the substrate components: hash joins,
//! sorting, wire encode/decode, SQL parsing+binding, RXL parsing, view-tree
//! construction, FD closure, and end-to-end tagging throughput.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use silkroute::{materialize, query1_tree, PlanSpec, Server};
use sr_data::constraints::{fd_closure, FunctionalDependency};
use sr_engine::sql::plan_sql;
use sr_engine::{execute, JoinKind, Plan};
use sr_tpch::{generate, Scale};

fn bench_engine(c: &mut Criterion) {
    let db = generate(Scale::mb(0.5)).expect("db");
    let join = Plan::scan("LineItem", "l").join(
        Plan::scan("Orders", "o"),
        JoinKind::Inner,
        vec![("l_orderkey".into(), "o_orderkey".into())],
    );
    c.bench_function("engine/hash_join_lineitem_orders", |b| {
        b.iter(|| execute(&join, &db).expect("join"))
    });

    let sort = Plan::scan("LineItem", "l").sort(vec![
        "l_suppkey".into(),
        "l_partkey".into(),
        "l_orderkey".into(),
    ]);
    c.bench_function("engine/sort_lineitem_3keys", |b| {
        b.iter(|| execute(&sort, &db).expect("sort"))
    });

    let rows = execute(&Plan::scan("LineItem", "l"), &db)
        .expect("scan")
        .rows;
    c.bench_function("wire/encode_lineitem", |b| {
        b.iter(|| sr_engine::wire::encode_rows(&rows))
    });
    let encoded = sr_engine::wire::encode_rows(&rows);
    c.bench_function("wire/decode_lineitem", |b| {
        b.iter_batched(
            || encoded.clone(),
            |mut buf| {
                let mut n = 0usize;
                while sr_engine::wire::decode_row(&mut buf)
                    .expect("decode")
                    .is_some()
                {
                    n += 1;
                }
                n
            },
            BatchSize::SmallInput,
        )
    });

    let sql = "SELECT s.suppkey AS k, n.name AS nn FROM Supplier s, Nation n \
               WHERE s.nationkey = n.nationkey ORDER BY k";
    c.bench_function("sql/parse_and_bind", |b| {
        b.iter(|| plan_sql(sql, &db).expect("bind"))
    });
}

fn bench_frontend(c: &mut Criterion) {
    let db = generate(Scale::mb(0.1)).expect("db");
    c.bench_function("rxl/parse_query1", |b| {
        b.iter(|| sr_rxl::parse(silkroute::QUERY1_RXL).expect("parse"))
    });
    let q1 = silkroute::query1();
    c.bench_function("viewtree/build_and_label_query1", |b| {
        b.iter(|| sr_viewtree::build(&q1, &db).expect("build"))
    });
    let fds: Vec<FunctionalDependency> = (0..30)
        .map(|i| FunctionalDependency::new(&[&format!("a{i}")], &[&format!("a{}", i + 1)]))
        .collect();
    c.bench_function("fd/closure_chain30", |b| {
        b.iter(|| fd_closure(&["a0".to_string()], &fds))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let server = Server::new(Arc::new(generate(Scale::mb(0.5)).expect("db")));
    let tree = query1_tree(server.database());
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    group.bench_function("materialize_q1_unified_0.5mb", |b| {
        b.iter(|| {
            materialize(&tree, &server, PlanSpec::unified(&tree), std::io::sink())
                .expect("materialize")
        })
    });
    group.bench_function("materialize_q1_partitioned_0.5mb", |b| {
        b.iter(|| {
            materialize(
                &tree,
                &server,
                PlanSpec::fully_partitioned(),
                std::io::sink(),
            )
            .expect("materialize")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine, bench_frontend, bench_pipeline);
criterion_main!(benches);
