//! **§2 timing table** — Query 1 on the larger configuration: the paper's
//! motivating numbers,
//!
//! ```text
//! No. of queries   Total Time   Query Time
//!             10        1837s         584s
//!              5         592s         244s     (the optimal plan)
//!              1        2729s        1234s     (sorted outer-union)
//! ```
//!
//! We print the same three rows (fully partitioned / greedy-optimal /
//! unified outer-union) plus the paper's "several other plans … performed
//! almost as well" observation via the plan family.

use silkroute::{calibrated_params, gen_plan, query1_tree, run_plan, Oracle, PlanSpec, QueryStyle};
use sr_bench::setup;

fn main() {
    println!("=== Section 2 table: Query 1, Configuration B ===\n");
    let config = silkroute::Config::b();
    let server = setup(&config);
    let tree = query1_tree(server.database());

    // The paper's best plan came from inspection/greedy search; ours from
    // genPlan with reduction (§5).
    let oracle = Oracle::new(&server, calibrated_params(config.scale));
    let greedy = gen_plan(&tree, server.database(), &oracle, true).expect("genPlan");
    let best = greedy.recommended();

    let rows = [
        ("fully partitioned", PlanSpec::fully_partitioned()),
        (
            "greedy-optimal",
            PlanSpec {
                edges: best,
                reduce: true,
                style: QueryStyle::OuterJoin,
            },
        ),
        ("unified outer-union", PlanSpec::sorted_outer_union(&tree)),
    ];

    println!(
        "{:>22} {:>12} {:>14} {:>14}",
        "plan", "No. queries", "Total Time", "Query Time"
    );
    let mut measured = Vec::new();
    for (label, spec) in rows {
        // Median of 3 runs.
        let mut ms: Vec<silkroute::Measurement> = (0..3)
            .map(|_| run_plan(&tree, &server, spec, None).expect("plan run"))
            .collect();
        ms.sort_by(|a, b| a.total_ms.total_cmp(&b.total_ms));
        let m = ms.swap_remove(1);
        println!(
            "{label:>22} {:>12} {:>11.1} ms {:>11.1} ms",
            m.streams, m.total_ms, m.query_ms
        );
        measured.push((label, m));
    }

    let optimal = &measured[1].1;
    println!("\npaper (100 MB, 2001 RDBMS): 10 queries 1837s/584s, 5 queries 592s/244s, 1 query 2729s/1234s");
    println!(
        "shape check — partitioned/optimal: total {:.2}x (paper 3.1x), query {:.2}x (paper 2.4x)",
        measured[0].1.total_ms / optimal.total_ms,
        measured[0].1.query_ms / optimal.query_ms
    );
    println!(
        "shape check — outer-union/optimal: total {:.2}x (paper 4.6x), query {:.2}x (paper 5.1x)",
        measured[2].1.total_ms / optimal.total_ms,
        measured[2].1.query_ms / optimal.query_ms
    );
    println!(
        "greedy plan family: {} plans over mandatory={} optional={}",
        greedy.plans().len(),
        greedy.mandatory,
        greedy.optional
    );
}
