//! Sustained-load benchmark for the `silkroute serve` front-end.
//!
//! An in-process server (ephemeral port, the same engine configuration the
//! CLI's `serve` uses) is driven by two load shapes:
//!
//! * **closed loop** — C clients, each submitting its next query the
//!   moment the previous response completes, at several concurrency
//!   levels. Latency here measures the server under exactly-C outstanding
//!   requests; throughput (qps) rises with C until the admission slots
//!   saturate — the knee.
//! * **open loop** — requests arrive on a fixed schedule at ~70% of the
//!   best closed-loop throughput, regardless of completions. Latency is
//!   measured from *scheduled arrival* to completion, so queueing delay
//!   counts; this is the number a latency SLO would see.
//!
//! Per level the harness reports qps and p50/p99/p999 latency, plus the
//! saturation knee (the smallest concurrency reaching ≥90% of peak qps).
//! Every response is checked: protocol errors are fatal, and the XML
//! payload must be byte-identical across repetitions of the same query.
//! On a single-CPU host the engine executes streams inline, so qps scales
//! only until the one slot is busy — the JSON records `host_parallelism`
//! so readers can tell that regime apart from a real multi-core knee.
//!
//! Set `SR_BENCH_QUICK=1` for a CI-sized run. Results land in
//! `target/bench-results/BENCH_serve.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sr_obs::Json;
use sr_serve::{AdmitConfig, Client, ServeConfig, ViewRef};
use sr_tpch::Scale;

/// One measured load level.
struct Level {
    mode: &'static str,
    concurrency: usize,
    requests: usize,
    errors: usize,
    wall_ms: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn summarize(
    mode: &'static str,
    concurrency: usize,
    mut latencies_ms: Vec<f64>,
    errors: usize,
    wall: Duration,
) -> Level {
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let wall_ms = wall.as_secs_f64() * 1e3;
    Level {
        mode,
        concurrency,
        requests: latencies_ms.len(),
        errors,
        wall_ms,
        qps: latencies_ms.len() as f64 / wall.as_secs_f64().max(1e-9),
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        p999_ms: percentile(&latencies_ms, 0.999),
    }
}

/// The query mix: alternate the paper's two views so the plan cache and
/// admission see realistic variety. Index decides which.
fn view_for(i: u64, both: bool) -> &'static str {
    if both && i % 2 == 1 {
        "query2"
    } else {
        "query1"
    }
}

/// Reference documents per view, to pin byte-identity across the run.
type Reference = Arc<Mutex<std::collections::HashMap<&'static str, Vec<u8>>>>;

/// Closed loop: `concurrency` clients ping-pong requests until the shared
/// budget runs out. Returns per-request latencies, error count, and wall
/// time.
fn closed_loop(
    addr: std::net::SocketAddr,
    concurrency: usize,
    total_requests: usize,
    both_queries: bool,
    reference: &Reference,
) -> (Vec<f64>, usize, Duration) {
    let budget = Arc::new(AtomicU64::new(total_requests as u64));
    let started = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..concurrency {
        let budget = Arc::clone(&budget);
        let reference = Arc::clone(reference);
        handles.push(std::thread::spawn(move || {
            let mut latencies = Vec::new();
            let mut errors = 0usize;
            let mut client = match Client::connect(addr) {
                Ok(c) => c,
                Err(_) => return (latencies, 1),
            };
            loop {
                let remaining = budget.fetch_sub(1, Ordering::SeqCst);
                if remaining == 0 || remaining > total_requests as u64 {
                    break;
                }
                let name = view_for(remaining, both_queries);
                let t0 = Instant::now();
                match client.materialize(ViewRef::Named(name.into()), "unified") {
                    Ok(result) => {
                        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                        let mut map = reference.lock().expect("reference lock");
                        match map.get(name) {
                            Some(expected) => {
                                if expected != &result.document {
                                    errors += 1;
                                }
                            }
                            None => {
                                map.insert(name, result.document);
                            }
                        }
                    }
                    Err(_) => errors += 1,
                }
            }
            (latencies, errors)
        }));
    }
    let mut latencies = Vec::new();
    let mut errors = 0;
    for h in handles {
        let (l, e) = h.join().expect("closed-loop client");
        latencies.extend(l);
        errors += e;
    }
    (latencies, errors, started.elapsed())
}

/// Open loop: requests fire on a fixed arrival schedule; latency counts
/// from the scheduled instant, so server-side queueing is visible.
fn open_loop(
    addr: std::net::SocketAddr,
    workers: usize,
    total_requests: usize,
    interval: Duration,
    both_queries: bool,
) -> (Vec<f64>, usize, Duration) {
    let epoch = Instant::now();
    let next = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..workers {
        let next = Arc::clone(&next);
        handles.push(std::thread::spawn(move || {
            let mut latencies = Vec::new();
            let mut errors = 0usize;
            let mut client = match Client::connect(addr) {
                Ok(c) => c,
                Err(_) => return (latencies, 1),
            };
            loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= total_requests as u64 {
                    break;
                }
                let scheduled = epoch + interval * i as u32;
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                let name = view_for(i, both_queries);
                match client.materialize(ViewRef::Named(name.into()), "unified") {
                    Ok(_) => latencies.push(scheduled.elapsed().as_secs_f64() * 1e3),
                    Err(_) => errors += 1,
                }
            }
            (latencies, errors)
        }));
    }
    let mut latencies = Vec::new();
    let mut errors = 0;
    for h in handles {
        let (l, e) = h.join().expect("open-loop client");
        latencies.extend(l);
        errors += e;
    }
    (latencies, errors, epoch.elapsed())
}

fn main() {
    let quick = std::env::var("SR_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (scale_mb, levels, per_level, both_queries) = if quick {
        (0.1, vec![1usize, 4], 16usize, false)
    } else {
        (0.3, vec![1, 2, 4, 8], 64, true)
    };

    println!("=== silkroute serve under sustained load (host parallelism {parallelism}) ===\n");
    let db = sr_tpch::generate(Scale::mb(scale_mb)).expect("tpch generation");
    let engine = Arc::new(sr_engine::Server::new(Arc::new(db)));
    let mut catalog = sr_serve::ViewCatalog::new();
    catalog.insert("query1", silkroute::query1_tree(engine.database()));
    catalog.insert("query2", silkroute::query2_tree(engine.database()));
    let handle = sr_serve::serve(
        Arc::clone(&engine),
        catalog,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            admit: AdmitConfig {
                slots: parallelism.max(2),
                per_client: 2,
                queue_depth: 64,
            },
            max_connections: 64,
            read_timeout: Duration::from_secs(10),
        },
    )
    .expect("bind serve");
    let addr = handle.local_addr();

    // Warm the plan cache and pin the reference document per view.
    let reference: Reference = Arc::new(Mutex::new(std::collections::HashMap::new()));
    {
        let warm = if both_queries { 2 } else { 1 };
        let (lat, errors, _) = closed_loop(addr, 1, warm, both_queries, &reference);
        assert_eq!(errors, 0, "warm-up failed");
        assert!(!lat.is_empty());
    }

    let mut measured: Vec<Level> = Vec::new();
    for &c in &levels {
        let (lat, errors, wall) = closed_loop(addr, c, per_level, both_queries, &reference);
        let level = summarize("closed", c, lat, errors, wall);
        println!(
            "closed  C={:<2} {:>4} req  {:>8.1} qps  p50 {:>7.1} ms  p99 {:>7.1} ms  \
             p999 {:>7.1} ms  errors {}",
            level.concurrency,
            level.requests,
            level.qps,
            level.p50_ms,
            level.p99_ms,
            level.p999_ms,
            level.errors
        );
        assert_eq!(level.errors, 0, "closed-loop errors at C={c}");
        measured.push(level);
    }

    // Saturation knee: smallest concurrency achieving >= 90% of peak qps.
    let peak_qps = measured.iter().map(|l| l.qps).fold(0.0f64, f64::max);
    let knee = measured
        .iter()
        .find(|l| l.qps >= 0.9 * peak_qps)
        .map(|l| (l.concurrency, l.qps))
        .unwrap_or((1, peak_qps));
    println!(
        "\nsaturation knee: C={} at {:.1} qps (peak {:.1} qps)",
        knee.0, knee.1, peak_qps
    );

    // Open loop at ~70% of peak throughput: the server keeps up, so tail
    // latency reflects service time plus transient queueing, not overload.
    let rate = (0.7 * peak_qps).max(1.0);
    let interval = Duration::from_secs_f64(1.0 / rate);
    let workers = *levels.last().expect("levels nonempty");
    let (lat, errors, wall) = open_loop(addr, workers, per_level, interval, both_queries);
    let open = summarize("open", workers, lat, errors, wall);
    println!(
        "open    λ={rate:>5.1}/s {:>4} req  {:>8.1} qps  p50 {:>7.1} ms  p99 {:>7.1} ms  \
         p999 {:>7.1} ms  errors {}",
        open.requests, open.qps, open.p50_ms, open.p99_ms, open.p999_ms, open.errors
    );
    assert_eq!(open.errors, 0, "open-loop errors");
    measured.push(open);

    // The serve path must be protocol-clean under load.
    let snap = engine.metrics().snapshot();
    assert_eq!(
        snap.counter("serve.protocol_errors"),
        0,
        "protocol errors under load"
    );
    let connections = snap.counter("serve.connections");
    let admitted = snap.counter("serve.admitted");
    let rejected = snap.counter("serve.rejected");
    println!(
        "\ncounters: serve.connections {connections}, serve.admitted {admitted}, \
         serve.rejected {rejected}"
    );
    handle.shutdown();

    let json = Json::obj(vec![
        ("bench", Json::Str("serve".to_string())),
        ("quick", Json::Bool(quick)),
        ("scale_mb", Json::Float(scale_mb)),
        ("host_parallelism", Json::UInt(parallelism as u64)),
        (
            "levels",
            Json::Arr(
                measured
                    .iter()
                    .map(|l| {
                        Json::obj(vec![
                            ("mode", Json::Str(l.mode.to_string())),
                            ("concurrency", Json::UInt(l.concurrency as u64)),
                            ("requests", Json::UInt(l.requests as u64)),
                            ("errors", Json::UInt(l.errors as u64)),
                            ("wall_ms", Json::Float(l.wall_ms)),
                            ("qps", Json::Float(l.qps)),
                            ("p50_ms", Json::Float(l.p50_ms)),
                            ("p99_ms", Json::Float(l.p99_ms)),
                            ("p999_ms", Json::Float(l.p999_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "knee",
            Json::obj(vec![
                ("concurrency", Json::UInt(knee.0 as u64)),
                ("qps", Json::Float(knee.1)),
                ("peak_qps", Json::Float(peak_qps)),
            ]),
        ),
        (
            "counters",
            Json::obj(vec![
                ("connections", Json::UInt(connections)),
                ("admitted", Json::UInt(admitted)),
                ("rejected", Json::UInt(rejected)),
            ]),
        ),
    ]);
    let dir = std::path::Path::new("target/bench-results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("BENCH_serve.json");
    std::fs::write(&path, json.render_pretty() + "\n").expect("write BENCH_serve.json");
    println!("(results written to {})", path.display());
}
