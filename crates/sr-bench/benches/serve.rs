//! Sustained-load benchmark for the `silkroute serve` front-end.
//!
//! An in-process server (ephemeral port, the same engine configuration the
//! CLI's `serve` uses) is driven by two load shapes:
//!
//! * **closed loop** — C clients, each submitting its next query the
//!   moment the previous response completes, at several concurrency
//!   levels. Latency here measures the server under exactly-C outstanding
//!   requests; throughput (qps) rises with C until the admission slots
//!   saturate — the knee.
//! * **open loop** — requests arrive on a fixed schedule at ~70% of the
//!   best closed-loop throughput, regardless of completions. Latency is
//!   measured from *scheduled arrival* to completion, so queueing delay
//!   counts; this is the number a latency SLO would see.
//!
//! Per level the harness reports qps and p50/p99/p999 latency, plus the
//! saturation knee (the smallest concurrency reaching ≥90% of peak qps).
//! Every response is checked: protocol errors are fatal, and the XML
//! payload must be byte-identical across repetitions of the same query.
//! On a single-CPU host the engine executes streams inline, so qps scales
//! only until the one slot is busy — the JSON records `host_parallelism`
//! so readers can tell that regime apart from a real multi-core knee.
//!
//! Two telemetry sections ride along (docs/OBSERVABILITY.md):
//!
//! * **stats agreement** — right after the C=1 level, the server's own
//!   STATS rolling-window p50/p99/p999 of `serve.request_us` are compared
//!   against the load generator's measured latencies. The windows bucket
//!   values by bit length, so each quantile is only known to within 2×;
//!   the check allows that factor plus 1 ms of client-side slop.
//! * **telemetry overhead** — the same closed-loop level is driven against
//!   a second listener (same engine) with `--query-log` active; the qps
//!   delta is the cost of per-request logging. Soft bar: ≤2%, warned not
//!   failed — single-CPU CI hosts jitter more than that on their own.
//!
//! Set `SR_BENCH_QUICK=1` for a CI-sized run. Results land in
//! `target/bench-results/BENCH_serve.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sr_obs::Json;
use sr_serve::{AdmitConfig, Client, ServeConfig, ViewRef};
use sr_tpch::Scale;

/// One measured load level.
struct Level {
    mode: &'static str,
    concurrency: usize,
    requests: usize,
    errors: usize,
    wall_ms: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn summarize(
    mode: &'static str,
    concurrency: usize,
    mut latencies_ms: Vec<f64>,
    errors: usize,
    wall: Duration,
) -> Level {
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let wall_ms = wall.as_secs_f64() * 1e3;
    Level {
        mode,
        concurrency,
        requests: latencies_ms.len(),
        errors,
        wall_ms,
        qps: latencies_ms.len() as f64 / wall.as_secs_f64().max(1e-9),
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        p999_ms: percentile(&latencies_ms, 0.999),
    }
}

/// The query mix: alternate the paper's two views so the plan cache and
/// admission see realistic variety. Index decides which.
fn view_for(i: u64, both: bool) -> &'static str {
    if both && i % 2 == 1 {
        "query2"
    } else {
        "query1"
    }
}

/// Reference documents per view, to pin byte-identity across the run.
type Reference = Arc<Mutex<std::collections::HashMap<&'static str, Vec<u8>>>>;

/// Closed loop: `concurrency` clients ping-pong requests until the shared
/// budget runs out. Returns per-request latencies, error count, and wall
/// time.
fn closed_loop(
    addr: std::net::SocketAddr,
    concurrency: usize,
    total_requests: usize,
    both_queries: bool,
    reference: &Reference,
) -> (Vec<f64>, usize, Duration) {
    let budget = Arc::new(AtomicU64::new(total_requests as u64));
    let started = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..concurrency {
        let budget = Arc::clone(&budget);
        let reference = Arc::clone(reference);
        handles.push(std::thread::spawn(move || {
            let mut latencies = Vec::new();
            let mut errors = 0usize;
            let mut client = match Client::connect(addr) {
                Ok(c) => c,
                Err(_) => return (latencies, 1),
            };
            loop {
                let remaining = budget.fetch_sub(1, Ordering::SeqCst);
                if remaining == 0 || remaining > total_requests as u64 {
                    break;
                }
                let name = view_for(remaining, both_queries);
                let t0 = Instant::now();
                match client.materialize(ViewRef::Named(name.into()), "unified") {
                    Ok(result) => {
                        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                        let mut map = reference.lock().expect("reference lock");
                        match map.get(name) {
                            Some(expected) => {
                                if expected != &result.document {
                                    errors += 1;
                                }
                            }
                            None => {
                                map.insert(name, result.document);
                            }
                        }
                    }
                    Err(_) => errors += 1,
                }
            }
            (latencies, errors)
        }));
    }
    let mut latencies = Vec::new();
    let mut errors = 0;
    for h in handles {
        let (l, e) = h.join().expect("closed-loop client");
        latencies.extend(l);
        errors += e;
    }
    (latencies, errors, started.elapsed())
}

/// Open loop: requests fire on a fixed arrival schedule; latency counts
/// from the scheduled instant, so server-side queueing is visible.
fn open_loop(
    addr: std::net::SocketAddr,
    workers: usize,
    total_requests: usize,
    interval: Duration,
    both_queries: bool,
) -> (Vec<f64>, usize, Duration) {
    let epoch = Instant::now();
    let next = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..workers {
        let next = Arc::clone(&next);
        handles.push(std::thread::spawn(move || {
            let mut latencies = Vec::new();
            let mut errors = 0usize;
            let mut client = match Client::connect(addr) {
                Ok(c) => c,
                Err(_) => return (latencies, 1),
            };
            loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= total_requests as u64 {
                    break;
                }
                let scheduled = epoch + interval * i as u32;
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                let name = view_for(i, both_queries);
                match client.materialize(ViewRef::Named(name.into()), "unified") {
                    Ok(_) => latencies.push(scheduled.elapsed().as_secs_f64() * 1e3),
                    Err(_) => errors += 1,
                }
            }
            (latencies, errors)
        }));
    }
    let mut latencies = Vec::new();
    let mut errors = 0;
    for h in handles {
        let (l, e) = h.join().expect("open-loop client");
        latencies.extend(l);
        errors += e;
    }
    (latencies, errors, epoch.elapsed())
}

/// Pull one rolling-window quantile (µs) out of a parsed STATS snapshot.
fn window_quantile(stats: &Json, window: &str, q: &str) -> f64 {
    stats
        .get("windows")
        .and_then(|w| w.get("histograms"))
        .and_then(|h| h.get("serve.request_us"))
        .and_then(|h| h.get(window))
        .and_then(|w| w.get(q))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("STATS lacks windows.histograms.serve.request_us.{window}.{q}"))
}

/// Compare the server's own rolling-window latency quantiles against what
/// the load generator just measured. The window buckets by bit length
/// (≤2× relative error per quantile); the load side additionally carries
/// client-and-protocol overhead, so allow the factor both ways plus 1.5 ms
/// of absolute slop.
fn stats_agreement(addr: std::net::SocketAddr, latencies_ms: &[f64], wall: Duration) -> Json {
    let mut sorted: Vec<f64> = latencies_ms.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let window = if wall < Duration::from_secs(9) {
        "10s"
    } else {
        "60s"
    };
    let mut stats_client = Client::connect(addr).expect("stats client connect");
    let stats = Json::parse(&stats_client.stats().expect("STATS under load"))
        .expect("STATS snapshot parses");
    let mut rows = Vec::new();
    println!("\nstats agreement ({window} window, serve.request_us vs load generator):");
    for (q, name) in [(0.50, "p50"), (0.99, "p99"), (0.999, "p999")] {
        let server_us = window_quantile(&stats, window, name);
        let load_us = percentile(&sorted, q) * 1e3;
        println!("  {name}: server {server_us:>9.0} µs   load {load_us:>9.0} µs");
        let agree = server_us <= load_us * 2.2 + 1500.0 && load_us <= server_us * 2.2 + 1500.0;
        assert!(
            agree,
            "STATS {window} {name} ({server_us:.0} µs) disagrees with the load \
             generator ({load_us:.0} µs) beyond bucket tolerance"
        );
        rows.push((
            name,
            Json::obj(vec![
                ("server_us", Json::Float(server_us)),
                ("load_us", Json::Float(load_us)),
            ]),
        ));
    }
    Json::obj(
        std::iter::once(("window", Json::Str(window.to_string())))
            .chain(rows)
            .collect(),
    )
}

fn main() {
    let quick = std::env::var("SR_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (scale_mb, levels, per_level, both_queries) = if quick {
        (0.1, vec![1usize, 4], 16usize, false)
    } else {
        (0.3, vec![1, 2, 4, 8], 64, true)
    };

    println!("=== silkroute serve under sustained load (host parallelism {parallelism}) ===\n");
    let db = sr_tpch::generate(Scale::mb(scale_mb)).expect("tpch generation");
    let engine = Arc::new(sr_engine::Server::new(Arc::new(db)));
    let mut catalog = sr_serve::ViewCatalog::new();
    catalog.insert("query1", silkroute::query1_tree(engine.database()));
    catalog.insert("query2", silkroute::query2_tree(engine.database()));
    let handle = sr_serve::serve(
        Arc::clone(&engine),
        catalog,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            admit: AdmitConfig {
                slots: parallelism.max(2),
                per_client: 2,
                queue_depth: 64,
            },
            max_connections: 64,
            read_timeout: Duration::from_secs(10),
            query_log: None,
            slow_ms: None,
        },
    )
    .expect("bind serve");
    let addr = handle.local_addr();

    // Warm the plan cache and pin the reference document per view.
    let reference: Reference = Arc::new(Mutex::new(std::collections::HashMap::new()));
    {
        let warm = if both_queries { 2 } else { 1 };
        let (lat, errors, _) = closed_loop(addr, 1, warm, both_queries, &reference);
        assert_eq!(errors, 0, "warm-up failed");
        assert!(!lat.is_empty());
    }

    let mut measured: Vec<Level> = Vec::new();
    let mut agreement = Json::Null;
    for &c in &levels {
        let (lat, errors, wall) = closed_loop(addr, c, per_level, both_queries, &reference);
        // At C=1 no request ever queues, so the server-side window and the
        // client-side latencies describe the same distribution — compare.
        if c == 1 && errors == 0 {
            agreement = stats_agreement(addr, &lat, wall);
        }
        let level = summarize("closed", c, lat, errors, wall);
        println!(
            "closed  C={:<2} {:>4} req  {:>8.1} qps  p50 {:>7.1} ms  p99 {:>7.1} ms  \
             p999 {:>7.1} ms  errors {}",
            level.concurrency,
            level.requests,
            level.qps,
            level.p50_ms,
            level.p99_ms,
            level.p999_ms,
            level.errors
        );
        assert_eq!(level.errors, 0, "closed-loop errors at C={c}");
        measured.push(level);
    }

    // Saturation knee: smallest concurrency achieving >= 90% of peak qps.
    let peak_qps = measured.iter().map(|l| l.qps).fold(0.0f64, f64::max);
    let knee = measured
        .iter()
        .find(|l| l.qps >= 0.9 * peak_qps)
        .map(|l| (l.concurrency, l.qps))
        .unwrap_or((1, peak_qps));
    println!(
        "\nsaturation knee: C={} at {:.1} qps (peak {:.1} qps)",
        knee.0, knee.1, peak_qps
    );

    // Open loop at ~70% of peak throughput: the server keeps up, so tail
    // latency reflects service time plus transient queueing, not overload.
    let rate = (0.7 * peak_qps).max(1.0);
    let interval = Duration::from_secs_f64(1.0 / rate);
    let workers = *levels.last().expect("levels nonempty");
    let (lat, errors, wall) = open_loop(addr, workers, per_level, interval, both_queries);
    let open = summarize("open", workers, lat, errors, wall);
    println!(
        "open    λ={rate:>5.1}/s {:>4} req  {:>8.1} qps  p50 {:>7.1} ms  p99 {:>7.1} ms  \
         p999 {:>7.1} ms  errors {}",
        open.requests, open.qps, open.p50_ms, open.p99_ms, open.p999_ms, open.errors
    );
    assert_eq!(open.errors, 0, "open-loop errors");
    measured.push(open);

    // The serve path must be protocol-clean under load.
    let snap = engine.metrics().snapshot();
    assert_eq!(
        snap.counter("serve.protocol_errors"),
        0,
        "protocol errors under load"
    );
    let connections = snap.counter("serve.connections");
    let admitted = snap.counter("serve.admitted");
    let rejected = snap.counter("serve.rejected");
    println!(
        "\ncounters: serve.connections {connections}, serve.admitted {admitted}, \
         serve.rejected {rejected}"
    );

    // Telemetry overhead: drive the top closed-loop level once more
    // against the plain listener, then against a second listener (same
    // warm engine) that writes a query-log record per request. The qps
    // delta is what `--query-log` costs end to end.
    let dir = std::path::Path::new("target/bench-results");
    let _ = std::fs::create_dir_all(dir);
    let qlog_path = dir.join("serve-qlog.jsonl");
    // Measure at the slot count, so no request queues and the delta is
    // the logging itself, not queue-position jitter.
    let overhead_c = parallelism.max(2);
    let mut catalog_qlog = sr_serve::ViewCatalog::new();
    catalog_qlog.insert("query1", silkroute::query1_tree(engine.database()));
    catalog_qlog.insert("query2", silkroute::query2_tree(engine.database()));
    let handle_qlog = sr_serve::serve(
        Arc::clone(&engine),
        catalog_qlog,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            admit: AdmitConfig {
                slots: parallelism.max(2),
                per_client: 2,
                queue_depth: 64,
            },
            max_connections: 64,
            read_timeout: Duration::from_secs(10),
            query_log: Some(qlog_path.clone()),
            slow_ms: None,
        },
    )
    .expect("bind qlog serve");
    // Interleave two rounds of each and keep the best, the usual defence
    // against one round landing on a scheduler hiccup.
    let mut qps_plain = 0.0f64;
    let mut qps_qlog = 0.0f64;
    let mut qlog_requests = 0usize;
    for _ in 0..2 {
        let (lat, errors, wall) =
            closed_loop(addr, overhead_c, per_level, both_queries, &reference);
        assert_eq!(errors, 0, "telemetry-overhead plain run errors");
        qps_plain = qps_plain.max(lat.len() as f64 / wall.as_secs_f64().max(1e-9));
        let (lat, errors, wall) = closed_loop(
            handle_qlog.local_addr(),
            overhead_c,
            per_level,
            both_queries,
            &reference,
        );
        assert_eq!(errors, 0, "telemetry-overhead query-log run errors");
        qps_qlog = qps_qlog.max(lat.len() as f64 / wall.as_secs_f64().max(1e-9));
        qlog_requests += lat.len();
    }
    let overhead_pct = (1.0 - qps_qlog / qps_plain) * 100.0;
    // Records land via a bounded channel and a writer thread, so the last
    // few may still be in flight when the load generator returns — wait
    // for the accounting to catch up before reading it.
    let qlog_count = |key: &str| {
        handle_qlog
            .stats_json()
            .get("qlog")
            .and_then(|q| q.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as u64
    };
    let deadline = Instant::now() + Duration::from_secs(5);
    while (qlog_count("written") + qlog_count("dropped")) < qlog_requests as u64
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    let qlog_written = qlog_count("written");
    let qlog_dropped = qlog_count("dropped");
    println!(
        "\ntelemetry overhead at C={overhead_c}: plain {qps_plain:.1} qps, \
         query-log {qps_qlog:.1} qps ({overhead_pct:+.2}%), \
         {qlog_written} records ({qlog_dropped} dropped)"
    );
    // Soft bar, same convention as the other benches: warn, don't flake.
    if overhead_pct > 2.0 {
        eprintln!("WARN: query-log overhead {overhead_pct:.2}% exceeds the 2% bar");
    }
    assert!(
        (qlog_written + qlog_dropped) as usize >= qlog_requests,
        "query log lost records: {qlog_written} written + {qlog_dropped} dropped \
         for {qlog_requests} requests"
    );
    handle_qlog.shutdown();
    handle.shutdown();

    let json = Json::obj(vec![
        ("bench", Json::Str("serve".to_string())),
        ("quick", Json::Bool(quick)),
        ("scale_mb", Json::Float(scale_mb)),
        ("host_parallelism", Json::UInt(parallelism as u64)),
        (
            "levels",
            Json::Arr(
                measured
                    .iter()
                    .map(|l| {
                        Json::obj(vec![
                            ("mode", Json::Str(l.mode.to_string())),
                            ("concurrency", Json::UInt(l.concurrency as u64)),
                            ("requests", Json::UInt(l.requests as u64)),
                            ("errors", Json::UInt(l.errors as u64)),
                            ("wall_ms", Json::Float(l.wall_ms)),
                            ("qps", Json::Float(l.qps)),
                            ("p50_ms", Json::Float(l.p50_ms)),
                            ("p99_ms", Json::Float(l.p99_ms)),
                            ("p999_ms", Json::Float(l.p999_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "knee",
            Json::obj(vec![
                ("concurrency", Json::UInt(knee.0 as u64)),
                ("qps", Json::Float(knee.1)),
                ("peak_qps", Json::Float(peak_qps)),
            ]),
        ),
        (
            "counters",
            Json::obj(vec![
                ("connections", Json::UInt(connections)),
                ("admitted", Json::UInt(admitted)),
                ("rejected", Json::UInt(rejected)),
            ]),
        ),
        ("stats_agreement", agreement),
        (
            "telemetry",
            Json::obj(vec![
                ("concurrency", Json::UInt(overhead_c as u64)),
                ("qps_plain", Json::Float(qps_plain)),
                ("qps_query_log", Json::Float(qps_qlog)),
                ("overhead_pct", Json::Float(overhead_pct)),
                ("qlog_written", Json::UInt(qlog_written)),
                ("qlog_dropped", Json::UInt(qlog_dropped)),
            ]),
        ),
    ]);
    let path = dir.join("BENCH_serve.json");
    std::fs::write(&path, json.render_pretty() + "\n").expect("write BENCH_serve.json");
    println!("(results written to {})", path.display());
}
