//! **Figure 14** — Query 2, Configuration A: the 512-plan sweep for the
//! parallel-`*` variant (order block under supplier).
//!
//! Paper: non-reduced — outer-union 21% and fully-partitioned 41% slower
//! than optimal; reduced — optimal 2.6–4.3× faster than outer-union and
//! fully partitioned; no plans timed out.

use silkroute::{query2_tree, sweep_all_plans, QueryStyle};
use sr_bench::{markers, min_by, print_panel, setup, write_csv};

fn main() {
    println!("=== Figure 14: Query 2, Configuration A (512-plan sweep) ===\n");
    let config = silkroute::Config::a();
    let server = setup(&config);
    let tree = query2_tree(server.database());
    assert_eq!(tree.edge_count(), 9);
    let timeout = Some(config.timeout);

    println!("sweeping 512 plans without reduction…");
    let plain = sweep_all_plans(&tree, &server, false, QueryStyle::OuterJoin, timeout)
        .expect("non-reduced sweep");
    println!("sweeping 512 plans with reduction…\n");
    let reduced = sweep_all_plans(&tree, &server, true, QueryStyle::OuterJoin, timeout)
        .expect("reduced sweep");

    let mk_plain = markers(&tree, &server, false, timeout);
    let mk_reduced = markers(&tree, &server, true, timeout);

    print_panel("(a) query time, non-reduced", &plain, &mk_plain, true);
    print_panel(
        "(b) query time, with reduction",
        &reduced,
        &mk_reduced,
        true,
    );
    print_panel(
        "(c) total time, with reduction",
        &reduced,
        &mk_reduced,
        false,
    );

    let top10 = |ms: &[silkroute::Measurement]| -> f64 {
        let mut q: Vec<f64> = ms
            .iter()
            .filter(|m| !m.timed_out)
            .map(|m| m.query_ms)
            .collect();
        q.sort_by(f64::total_cmp);
        q.iter().take(10).sum::<f64>() / 10.0
    };
    println!(
        "ten fastest reduced vs non-reduced (query time): {:.2}x (paper: ~2.5x)",
        top10(&plain) / top10(&reduced)
    );
    let (best_total, _) = min_by(&reduced, |m| m.total_ms);
    println!(
        "total time: outer-union {:.2}x optimal (paper: 4.8x), partitioned {:.2}x (paper: 3.7x)",
        mk_reduced.unified_ou.total_ms / best_total,
        mk_reduced.partitioned.total_ms / best_total
    );

    write_csv("fig14_nonreduced", &plain);
    write_csv("fig14_reduced", &reduced);
    sr_bench::svg::write_svg(
        "fig14a",
        &sr_bench::svg::scatter_svg(
            "Query 2, Config A: query time (non-reduced)",
            &plain,
            &mk_plain,
            true,
        ),
    );
    sr_bench::svg::write_svg(
        "fig14b",
        &sr_bench::svg::scatter_svg(
            "Query 2, Config A: query time (reduced)",
            &reduced,
            &mk_reduced,
            true,
        ),
    );
    sr_bench::svg::write_svg(
        "fig14c",
        &sr_bench::svg::scatter_svg(
            "Query 2, Config A: total time (reduced)",
            &reduced,
            &mk_reduced,
            false,
        ),
    );
}
