//! **Figure 15** — Configuration B, with view-tree reduction: the plans the
//! greedy algorithm generates, compared against the unified outer-union and
//! fully partitioned defaults (exhaustively sweeping 512 plans is not
//! feasible at this size; the paper did the same).
//!
//! Paper: Query 1 — outer-union 5× and fully-partitioned 2.4× slower than
//! the best generated plan (query time); Query 2 — 4.7× and 2.6×. Total
//! times: outer-union 4.6×, partitioned 3.1×.

use silkroute::{calibrated_params, gen_plan, run_plan, Measurement, Oracle, PlanSpec, QueryStyle};
use sr_bench::{setup, write_csv};
use sr_viewtree::EdgeSet;

fn main() {
    println!("=== Figure 15: Configuration B, greedy plans vs defaults ===\n");
    let config = silkroute::Config::b();
    let server = setup(&config);

    for (name, tree) in [
        ("Query 1", silkroute::query1_tree(server.database())),
        ("Query 2", silkroute::query2_tree(server.database())),
    ] {
        println!("--- {name} ---");
        let oracle = Oracle::new(&server, calibrated_params(config.scale));
        let greedy = gen_plan(&tree, server.database(), &oracle, true).expect("genPlan");
        let plans = greedy.plans();
        println!(
            "genPlan: mandatory={} optional={} → {} plans ({} oracle requests)",
            greedy.mandatory,
            greedy.optional,
            plans.len(),
            greedy.oracle_requests
        );

        let mut all: Vec<Measurement> = Vec::new();
        println!(
            "{:>14} {:>8} {:>12} {:>12}",
            "edges", "streams", "query (ms)", "total (ms)"
        );
        for edges in &plans {
            let m = run_plan(
                &tree,
                &server,
                PlanSpec {
                    edges: *edges,
                    reduce: true,
                    style: QueryStyle::OuterJoin,
                },
                None,
            )
            .expect("greedy plan");
            println!(
                "{:>14} {:>8} {:>12.1} {:>12.1}",
                edges.to_string(),
                m.streams,
                m.query_ms,
                m.total_ms
            );
            all.push(m);
        }
        let best_q = all.iter().map(|m| m.query_ms).fold(f64::INFINITY, f64::min);
        let best_t = all.iter().map(|m| m.total_ms).fold(f64::INFINITY, f64::min);

        let ou = run_plan(&tree, &server, PlanSpec::sorted_outer_union(&tree), None)
            .expect("outer-union");
        let fp = run_plan(&tree, &server, PlanSpec::fully_partitioned(), None)
            .expect("fully partitioned");
        let uoj = run_plan(
            &tree,
            &server,
            PlanSpec {
                edges: EdgeSet::full(&tree),
                reduce: true,
                style: QueryStyle::OuterJoin,
            },
            None,
        )
        .expect("unified outer-join");
        for (label, m) in [
            ("unified outer-union", &ou),
            ("unified outer-join", &uoj),
            ("fully partitioned", &fp),
        ] {
            println!(
                "{label:>22}: query {:>9.1} ms ({:.2}x best), total {:>9.1} ms ({:.2}x best)",
                m.query_ms,
                m.query_ms / best_q,
                m.total_ms,
                m.total_ms / best_t
            );
            all.push(m.clone());
        }
        println!(
            "paper ({name}): outer-union ~5x / 4.6x, fully partitioned ~2.4-2.6x / 3.1x slower than best\n"
        );
        write_csv(
            &format!("fig15_{}", name.to_lowercase().replace(' ', "")),
            &all,
        );
    }
}
