//! Pipelined streaming execution vs. the pre-PR baseline, over the
//! Fig. 13/14 plan families.
//!
//! This bench is not a figure from the paper: it measures the two halves of
//! the executor hot-path work against the configuration that predates them.
//! Three modes are compared on every marker plan of Query 1 and Query 2:
//!
//! * **baseline** — the pre-PR configuration: sort elision and the
//!   prepared-plan cache disabled (`Server::with_sort_elision(false)`,
//!   `with_plan_cache(false)`) and sequential buffered execution
//!   (`run_plan_buffered`, each component query executed to completion
//!   before the next).
//! * **sequential** — elision and plan cache enabled, still buffered.
//!   Isolates the win from the planning-side work alone.
//! * **pipelined** — the default `run_plan` path: elision enabled, every
//!   component query submitted up front as a stream, tagging overlapping
//!   with server-side execution.
//! * **traced** — the pipelined path with a structured trace sink
//!   installed (`Server::with_tracer`), pricing the tracing subsystem;
//!   the `trace_overhead` ratio in the JSON is traced over pipelined wall
//!   time and must stay within +5%.
//!
//! The headline number is baseline vs. pipelined on the multi-stream
//! plans, i.e. "what did this PR buy end to end". Per-stage
//! `server_ms` / `transfer_ms` / `tag_ms` decompositions and the elided
//! sort counts are recorded per point. Note that on a single-CPU host the
//! streaming path degrades to inline execution (no worker threads), so the
//! pipelined-vs-sequential delta there reflects elision plus the leaner
//! chunk-encode path, not true overlap; the JSON records the host's
//! available parallelism so readers can tell which regime produced it.
//!
//! Set `SR_BENCH_QUICK=1` for a CI-sized run (small scale, Query 1 only,
//! single repetition). Results land in
//! `target/bench-results/BENCH_pipeline.json`.

use std::sync::Arc;

use silkroute::{run_plan, run_plan_buffered, Config, Measurement, PlanSpec, QueryStyle, Server};
use sr_obs::{Json, Tracer};
use sr_tpch::Scale;
use sr_viewtree::{EdgeSet, ViewTree};

/// One measured plan point: the same spec run in all three modes.
struct Point {
    query: &'static str,
    plan: &'static str,
    streams: usize,
    sorts_elided: u64,
    baseline: Measurement,
    sequential: Measurement,
    pipelined: Measurement,
    traced: Measurement,
}

impl Point {
    /// End-to-end: pre-PR configuration vs. the new default path.
    fn speedup(&self) -> f64 {
        self.baseline.total_ms / self.pipelined.total_ms
    }

    /// Cost of recording a full trace: pipelined-with-tracer over plain
    /// pipelined wall time (1.0 = free; the acceptance bar is ≤ 1.05).
    fn trace_overhead(&self) -> f64 {
        self.traced.total_ms / self.pipelined.total_ms
    }
}

fn keep_min(slot: &mut Option<Measurement>, m: Measurement) {
    assert!(!m.timed_out, "untimed plan reported a timeout");
    if slot
        .as_ref()
        .map(|b| m.total_ms < b.total_ms)
        .unwrap_or(true)
    {
        *slot = Some(m);
    }
}

#[allow(clippy::too_many_arguments)]
fn measure_point(
    query: &'static str,
    plan: &'static str,
    tree: &ViewTree,
    server: &Server,
    baseline_server: &Server,
    traced_server: &Server,
    edges: EdgeSet,
    reps: usize,
) -> Point {
    let spec = PlanSpec {
        edges,
        reduce: true,
        style: QueryStyle::OuterJoin,
    };
    // Count the elisions contributed by one full pass over the plan's
    // component queries (warm-up run), not reps× that.
    let before = server.metrics().snapshot().counter("exec.sorts_elided");
    let warm = run_plan(tree, server, spec, None).expect("warm-up");
    let sorts_elided = server.metrics().snapshot().counter("exec.sorts_elided") - before;
    let _ = run_plan_buffered(tree, baseline_server, spec, None).expect("baseline warm-up");
    let _ = run_plan(tree, traced_server, spec, None).expect("traced warm-up");
    // Interleave the modes and keep each one's fastest repetition, so
    // drift (scheduler noise, allocator state) hits every mode equally.
    let mut baseline: Option<Measurement> = None;
    let mut sequential: Option<Measurement> = None;
    let mut pipelined: Option<Measurement> = None;
    let mut traced: Option<Measurement> = None;
    for _ in 0..reps {
        keep_min(
            &mut baseline,
            run_plan_buffered(tree, baseline_server, spec, None).expect("baseline run"),
        );
        keep_min(
            &mut sequential,
            run_plan_buffered(tree, server, spec, None).expect("sequential run"),
        );
        keep_min(
            &mut pipelined,
            run_plan(tree, server, spec, None).expect("pipelined run"),
        );
        keep_min(
            &mut traced,
            run_plan(tree, traced_server, spec, None).expect("traced run"),
        );
    }
    Point {
        query,
        plan,
        streams: warm.streams,
        sorts_elided,
        baseline: baseline.expect("at least one repetition"),
        sequential: sequential.expect("at least one repetition"),
        pipelined: pipelined.expect("at least one repetition"),
        traced: traced.expect("at least one repetition"),
    }
}

fn stage_json(m: &Measurement) -> Json {
    Json::obj(vec![
        ("server_ms", Json::Float(m.query_ms)),
        ("transfer_ms", Json::Float(m.transfer_ms)),
        ("tag_ms", Json::Float(m.tag_ms)),
        ("total_ms", Json::Float(m.total_ms)),
        ("tuples", Json::UInt(m.tuples)),
        ("wire_bytes", Json::UInt(m.wire_bytes)),
    ])
}

fn main() {
    let quick = std::env::var("SR_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let (config, reps) = if quick {
        (
            Config {
                name: "A (quick)",
                scale: Scale::mb(0.2),
                timeout: std::time::Duration::from_secs(300),
            },
            1,
        )
    } else {
        (Config::a(), 7)
    };
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("=== Pipelined streaming vs. pre-PR baseline (host parallelism {parallelism}) ===\n");
    let server = sr_bench::setup(&config);
    // The baseline server shares the generated database but reproduces the
    // pre-PR configuration: no order-property pass, no prepared-plan cache,
    // buffered execution only.
    let baseline_server = Server::new(Arc::clone(server.database()))
        .with_sort_elision(false)
        .with_plan_cache(false);
    // A fourth server mirrors the pipelined default but records a full
    // structured trace of every run, to price the tracing subsystem.
    let traced_server =
        Server::new(Arc::clone(server.database())).with_tracer(Arc::new(Tracer::new()));
    let db = server.database();

    let mut trees: Vec<(&'static str, ViewTree)> = vec![("query1", silkroute::query1_tree(db))];
    if !quick {
        trees.push(("query2", silkroute::query2_tree(db)));
    }

    let mut points: Vec<Point> = Vec::new();
    for (qname, tree) in &trees {
        let full = EdgeSet::full(tree);
        // A mid-cut plan: keep the lower half of the edge bits, giving a
        // plan with roughly edge_count/2 + 1 streams.
        let half = EdgeSet::from_bits(full.bits() & ((1u64 << (tree.edge_count() / 2)) - 1));
        let mut plans: Vec<(&'static str, EdgeSet)> =
            vec![("unified", full), ("partitioned", EdgeSet::empty())];
        if !quick {
            plans.insert(1, ("half", half));
        }
        for (pname, edges) in plans {
            let p = measure_point(
                qname,
                pname,
                tree,
                &server,
                &baseline_server,
                &traced_server,
                edges,
                reps,
            );
            println!(
                "{:<7} {:<12} {:>2} stream(s)  sorts elided {:>2}  \
                 baseline {:>8.1} ms  sequential {:>8.1} ms  pipelined {:>8.1} ms  ({:.2}x)  \
                 traced {:>8.1} ms ({:+.1}%)",
                p.query,
                p.plan,
                p.streams,
                p.sorts_elided,
                p.baseline.total_ms,
                p.sequential.total_ms,
                p.pipelined.total_ms,
                p.speedup(),
                p.traced.total_ms,
                (p.trace_overhead() - 1.0) * 100.0
            );
            points.push(p);
        }
    }

    // The headline number: wall-time ratio on the multi-stream plans, where
    // the pipeline actually has several component queries in flight.
    let multi: Vec<&Point> = points.iter().filter(|p| p.streams > 1).collect();
    let base: f64 = multi.iter().map(|p| p.baseline.total_ms).sum();
    let seq: f64 = multi.iter().map(|p| p.sequential.total_ms).sum();
    let pipe: f64 = multi.iter().map(|p| p.pipelined.total_ms).sum();
    println!(
        "\nmulti-stream plans ({} plan(s)): baseline {base:.1} ms, sequential {seq:.1} ms, \
         pipelined {pipe:.1} ms",
        multi.len()
    );
    println!(
        "  end-to-end speedup (baseline -> pipelined): {:.2}x \
         (elision alone: {:.2}x, pipeline alone: {:.2}x)",
        base / pipe,
        base / seq,
        seq / pipe
    );
    let elided: u64 = points.iter().map(|p| p.sorts_elided).sum();
    println!("sorts elided across all measured plans: {elided}");
    let traced_total: f64 = points.iter().map(|p| p.traced.total_ms).sum();
    let pipe_total: f64 = points.iter().map(|p| p.pipelined.total_ms).sum();
    let trace_overhead = traced_total / pipe_total;
    println!(
        "trace overhead across all measured plans: {:+.1}% (acceptance bar +5%)",
        (trace_overhead - 1.0) * 100.0
    );

    // === Vectorized columnar execution vs. the tuple path ===
    //
    // The same plans, pipelined, with the server's executor switched to
    // batch-at-a-time columnar (`--exec vectorized`). The headline is the
    // *server-side* time ratio (`server_ms`): late materialization means
    // the vectorized path never builds rows, so the scan/filter/encode
    // work per tuple collapses. The acceptance bar is ≥2× on the
    // scan-heavy query1 unified plan.
    let vector_server =
        Server::new(Arc::clone(server.database())).with_exec_mode(sr_engine::ExecMode::Vectorized);
    println!("\n=== Vectorized columnar execution (--exec vectorized) ===\n");
    struct VecPoint {
        query: String,
        plan: String,
        tuple: Measurement,
        vectorized: Measurement,
    }
    let mut vec_points: Vec<VecPoint> = Vec::new();
    for (qname, tree) in &trees {
        let plans: Vec<(&'static str, EdgeSet)> = vec![
            ("unified", EdgeSet::full(tree)),
            ("partitioned", EdgeSet::empty()),
        ];
        for (pname, edges) in plans {
            let spec = PlanSpec {
                edges,
                reduce: true,
                style: QueryStyle::OuterJoin,
            };
            let _ = run_plan(tree, &server, spec, None).expect("tuple warm-up");
            let _ = run_plan(tree, &vector_server, spec, None).expect("vectorized warm-up");
            let mut tuple: Option<Measurement> = None;
            let mut vectorized: Option<Measurement> = None;
            for _ in 0..reps {
                keep_min(
                    &mut tuple,
                    run_plan(tree, &server, spec, None).expect("tuple run"),
                );
                keep_min(
                    &mut vectorized,
                    run_plan(tree, &vector_server, spec, None).expect("vectorized run"),
                );
            }
            let t = tuple.expect("at least one repetition");
            let v = vectorized.expect("at least one repetition");
            println!(
                "{:<7} {:<12} tuple server {:>8.2} ms  vectorized server {:>8.2} ms  \
                 ({:.2}x server, {:.2}x total)",
                qname,
                pname,
                t.query_ms,
                v.query_ms,
                t.query_ms / v.query_ms,
                t.total_ms / v.total_ms
            );
            vec_points.push(VecPoint {
                query: qname.to_string(),
                plan: pname.to_string(),
                tuple: t,
                vectorized: v,
            });
        }
    }
    let t_server: f64 = vec_points.iter().map(|p| p.tuple.query_ms).sum();
    let v_server: f64 = vec_points.iter().map(|p| p.vectorized.query_ms).sum();
    println!(
        "\nvectorized server-side speedup across all plans: {:.2}x \
         (tuple {t_server:.2} ms, vectorized {v_server:.2} ms)",
        t_server / v_server
    );
    let vec_snap = vector_server.metrics().snapshot();
    let exec_batches = vec_snap.counter("exec.batches");
    println!(
        "batches processed: {exec_batches} (batch size {})",
        sr_data::BATCH_ROWS
    );

    let json = Json::obj(vec![
        ("bench", Json::Str("pipeline".to_string())),
        ("quick", Json::Bool(quick)),
        ("config", Json::Str(config.describe())),
        ("repetitions", Json::UInt(reps as u64)),
        ("host_parallelism", Json::UInt(parallelism as u64)),
        // Mode of the baseline/sequential/pipelined/traced sections; the
        // `vectorized` section below carries both modes side by side.
        ("exec_mode", Json::Str("tuple".to_string())),
        ("batch_size", Json::UInt(sr_data::BATCH_ROWS as u64)),
        (
            "baseline_definition",
            Json::Str(
                "sort elision and plan cache disabled + sequential buffered execution \
                 (pre-PR configuration)"
                    .to_string(),
            ),
        ),
        (
            "plans",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("query", Json::Str(p.query.to_string())),
                            ("plan", Json::Str(p.plan.to_string())),
                            ("streams", Json::UInt(p.streams as u64)),
                            ("sorts_elided", Json::UInt(p.sorts_elided)),
                            ("baseline", stage_json(&p.baseline)),
                            ("sequential", stage_json(&p.sequential)),
                            ("pipelined", stage_json(&p.pipelined)),
                            ("traced", stage_json(&p.traced)),
                            ("speedup", Json::Float(p.speedup())),
                            ("trace_overhead", Json::Float(p.trace_overhead())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "multi_stream",
            Json::obj(vec![
                ("plans", Json::UInt(multi.len() as u64)),
                ("baseline_total_ms", Json::Float(base)),
                ("sequential_total_ms", Json::Float(seq)),
                ("pipelined_total_ms", Json::Float(pipe)),
                ("speedup", Json::Float(base / pipe)),
                ("speedup_elision_only", Json::Float(base / seq)),
                ("speedup_pipeline_only", Json::Float(seq / pipe)),
            ]),
        ),
        ("sorts_elided_total", Json::UInt(elided)),
        ("trace_overhead", Json::Float(trace_overhead)),
        (
            "vectorized",
            Json::obj(vec![
                ("batch_size", Json::UInt(sr_data::BATCH_ROWS as u64)),
                ("exec_batches", Json::UInt(exec_batches)),
                (
                    "plans",
                    Json::Arr(
                        vec_points
                            .iter()
                            .map(|p| {
                                Json::obj(vec![
                                    ("query", Json::Str(p.query.clone())),
                                    ("plan", Json::Str(p.plan.clone())),
                                    (
                                        "exec_modes",
                                        Json::obj(vec![
                                            ("tuple", stage_json(&p.tuple)),
                                            ("vectorized", stage_json(&p.vectorized)),
                                        ]),
                                    ),
                                    (
                                        "speedup_server",
                                        Json::Float(p.tuple.query_ms / p.vectorized.query_ms),
                                    ),
                                    (
                                        "speedup_total",
                                        Json::Float(p.tuple.total_ms / p.vectorized.total_ms),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "speedup_vectorized_server",
                    Json::Float(t_server / v_server),
                ),
            ]),
        ),
    ]);
    let dir = std::path::Path::new("target/bench-results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("BENCH_pipeline.json");
    std::fs::write(&path, json.render_pretty() + "\n").expect("write BENCH_pipeline.json");
    println!("(results written to {})", path.display());

    // === Sharded mode: intra-stream parallelism on top of pipelining ===
    //
    // The same unified plans, pipelined, with each component query split
    // into key-range shards executed concurrently and re-merged in order.
    // The headline is sharded wall-clock vs. unsharded on the same host;
    // per-point shard fan-out comes from the `exec.shards` counter so a
    // point where every query fell back to one shard is visible as such.
    // The fan-out is clamped to the host parallelism — on a single-CPU
    // host shards serialize and can only add merge overhead, so the bench
    // degrades to fan-out 1 there (recorded as such in the JSON).
    let shards = 4usize.min(parallelism);
    let sharded_server = Server::new(Arc::clone(server.database())).with_shards(shards);
    println!("\n=== Range-sharded pipelined execution (--shards {shards}) ===\n");
    let mut shard_points: Vec<(String, Measurement, Measurement, u64)> = Vec::new();
    for (qname, tree) in &trees {
        let spec = PlanSpec {
            edges: EdgeSet::full(tree),
            reduce: true,
            style: QueryStyle::OuterJoin,
        };
        let before = sharded_server.metrics().snapshot().counter("exec.shards");
        let _ = run_plan(tree, &sharded_server, spec, None).expect("sharded warm-up");
        let exec_shards = sharded_server.metrics().snapshot().counter("exec.shards") - before;
        let mut unsharded: Option<Measurement> = None;
        let mut sharded: Option<Measurement> = None;
        for _ in 0..reps {
            keep_min(
                &mut unsharded,
                run_plan(tree, &server, spec, None).expect("unsharded run"),
            );
            keep_min(
                &mut sharded,
                run_plan(tree, &sharded_server, spec, None).expect("sharded run"),
            );
        }
        let u = unsharded.expect("at least one repetition");
        let s = sharded.expect("at least one repetition");
        println!(
            "{:<7} unified  unsharded {:>8.1} ms  sharded {:>8.1} ms  ({:.2}x, fan-out {})",
            qname,
            u.total_ms,
            s.total_ms,
            u.total_ms / s.total_ms,
            exec_shards
        );
        shard_points.push((qname.to_string(), u, s, exec_shards));
    }
    let u_total: f64 = shard_points.iter().map(|(_, u, _, _)| u.total_ms).sum();
    let s_total: f64 = shard_points.iter().map(|(_, _, s, _)| s.total_ms).sum();
    println!(
        "\nsharded speedup across unified plans: {:.2}x (unsharded {u_total:.1} ms, \
         sharded {s_total:.1} ms)",
        u_total / s_total
    );
    let skew = sharded_server
        .metrics()
        .snapshot()
        .histogram("shard.skew")
        .map(|h| h.max)
        .unwrap_or(0);
    let shard_json = Json::obj(vec![
        ("bench", Json::Str("shard".to_string())),
        ("quick", Json::Bool(quick)),
        ("config", Json::Str(config.describe())),
        ("repetitions", Json::UInt(reps as u64)),
        ("host_parallelism", Json::UInt(parallelism as u64)),
        ("shards", Json::UInt(shards as u64)),
        (
            "plans",
            Json::Arr(
                shard_points
                    .iter()
                    .map(|(qname, u, s, exec_shards)| {
                        Json::obj(vec![
                            ("query", Json::Str(qname.clone())),
                            ("plan", Json::Str("unified".to_string())),
                            ("unsharded", stage_json(u)),
                            ("sharded", stage_json(s)),
                            ("speedup", Json::Float(u.total_ms / s.total_ms)),
                            ("exec_shards", Json::UInt(*exec_shards)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "totals",
            Json::obj(vec![
                ("unsharded_total_ms", Json::Float(u_total)),
                ("sharded_total_ms", Json::Float(s_total)),
                ("speedup", Json::Float(u_total / s_total)),
                ("max_skew_permille", Json::UInt(skew)),
            ]),
        ),
    ]);
    let shard_path = dir.join("BENCH_shard.json");
    std::fs::write(&shard_path, shard_json.render_pretty() + "\n").expect("write BENCH_shard.json");
    println!("(results written to {})", shard_path.display());
}
