//! The closed cost-feedback loop: learned re-costing plus the materialized
//! fragment cache, measured over repeated materializations.
//!
//! Each benchmark view is materialized `ITERS` times against a server with
//! the fragment cache enabled, with the plan chosen by a [`Recoster`] each
//! time — exactly the serve loop: plan → execute → feed actual stream
//! cardinalities back. Two effects compound across iterations:
//!
//! * **Fragment cache** — iteration 0 executes the component queries for
//!   real and captures their wire bytes; later iterations serve them from
//!   memory, collapsing `server_ms` (the warm/cold ratio is the headline
//!   `warm_speedup`, acceptance bar ≥ 1.5×).
//! * **Learned re-costing** — the recorded actuals accumulate Q-error
//!   against the estimates the initial plan was costed with; once the
//!   threshold trips, `genPlan` re-runs through an actuals-blended oracle
//!   and the plan partition can switch. The per-iteration `plan` field is
//!   the edge-bits fingerprint, so a switch is visible in the JSON.
//!
//! Set `SR_BENCH_QUICK=1` for a CI-sized run (small scale, Query 1 only).
//! Results land in `target/bench-results/BENCH_recost.json`; validate with
//! `scripts/validate_machine_output.py recost <file>`.

use std::sync::Arc;

use silkroute::{run_plan, Config, Server};
use sr_obs::Json;
use sr_plan::{CostParams, RecostConfig, Recoster};
use sr_sqlgen::generate_queries;
use sr_tpch::Scale;
use sr_viewtree::ViewTree;

/// Materializations per view (iteration 0 is the cold run).
const ITERS: usize = 5;

/// One materialization under the feedback loop.
struct Iter {
    plan_bits: u64,
    streams: usize,
    server_ms: f64,
    total_ms: f64,
    fragment_hits: u64,
    replans: u64,
}

/// Run the full feedback loop for one view; returns the per-iteration trace.
fn run_view(name: &str, tree: &ViewTree, server: &Server, recoster: &Recoster) -> Vec<Iter> {
    let mut iters = Vec::with_capacity(ITERS);
    for i in 0..ITERS {
        let spec = recoster.plan(name, tree, server).expect("plan");
        let hits_before = server.metrics().snapshot().counter("cache.fragment.hits");
        let m = run_plan(tree, server, spec, None).expect("materialize");
        let snap = server.metrics().snapshot();
        // Feed back each component query's actual cardinality. The buffered
        // lookup is a fragment-cache hit after iteration 0, so counting
        // rows costs a cache probe, not a re-execution.
        for q in generate_queries(tree, server.database(), spec).expect("generate") {
            let rows = server.execute_sql(&q.sql).expect("count rows").row_count;
            recoster.observe(name, &q.sql, rows as u64);
        }
        iters.push(Iter {
            plan_bits: spec.edges.bits(),
            streams: m.streams,
            server_ms: m.query_ms,
            total_ms: m.total_ms,
            fragment_hits: snap.counter("cache.fragment.hits") - hits_before,
            replans: snap.counter("oracle.recost"),
        });
        println!(
            "{name:<7} iter {i}  plan edges={:>4}  {} stream(s)  server {:>8.2} ms  \
             total {:>8.2} ms  fragment hits {:>2}  replans {}",
            iters[i].plan_bits,
            iters[i].streams,
            iters[i].server_ms,
            iters[i].total_ms,
            iters[i].fragment_hits,
            iters[i].replans,
        );
    }
    iters
}

/// Cold server time over the best warm server time (clamped away from a
/// zero denominator: a full cache hit reports zero server-side work).
fn warm_speedup(iters: &[Iter]) -> f64 {
    let cold = iters[0].server_ms;
    let warm = iters[1..]
        .iter()
        .map(|it| it.server_ms)
        .fold(f64::INFINITY, f64::min);
    cold / warm.max(0.01)
}

fn main() {
    let quick = std::env::var("SR_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let config = if quick {
        Config {
            name: "A (quick)",
            scale: Scale::mb(0.2),
            timeout: std::time::Duration::from_secs(300),
        }
    } else {
        Config::a()
    };
    println!("=== Learned re-costing + fragment cache over repeated materializations ===\n");
    let base = sr_bench::setup(&config);
    // The measured server mirrors `silkroute serve --fragment-cache`: the
    // cache holds every component fragment of both views at this scale.
    let server = Server::new(Arc::clone(base.database())).with_fragment_cache(256 << 20);
    // A deliberately low re-plan threshold so genuine estimate drift on the
    // benchmark views trips a re-plan within the measured iterations.
    let recoster = Recoster::new(RecostConfig {
        params: CostParams::default(),
        threshold: 0.5,
        reduce: true,
    });
    let db = server.database();

    let mut views: Vec<(&'static str, ViewTree)> = vec![("query1", silkroute::query1_tree(db))];
    if !quick {
        views.push(("query2", silkroute::query2_tree(db)));
    }

    let mut view_json = Vec::new();
    for (name, tree) in &views {
        let iters = run_view(name, tree, &server, &recoster);
        let speedup = warm_speedup(&iters);
        let switched = iters.iter().any(|it| it.plan_bits != iters[0].plan_bits);
        println!(
            "{name}: warm speedup {speedup:.1}x (bar 1.5x), plan {} across iterations, \
             {} re-plan(s)\n",
            if switched { "SWITCHED" } else { "stable" },
            recoster.plan_count(name).saturating_sub(1),
        );
        view_json.push(Json::obj(vec![
            ("view", Json::Str(name.to_string())),
            (
                "iterations",
                Json::Arr(
                    iters
                        .iter()
                        .enumerate()
                        .map(|(i, it)| {
                            Json::obj(vec![
                                ("iter", Json::UInt(i as u64)),
                                ("plan", Json::UInt(it.plan_bits)),
                                ("streams", Json::UInt(it.streams as u64)),
                                ("server_ms", Json::Float(it.server_ms)),
                                ("total_ms", Json::Float(it.total_ms)),
                                ("fragment_hits", Json::UInt(it.fragment_hits)),
                                ("replans", Json::UInt(it.replans)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("warm_speedup", Json::Float(speedup)),
            ("plan_switched", Json::Bool(switched)),
            (
                "replans",
                Json::UInt(recoster.plan_count(name).saturating_sub(1)),
            ),
        ]));
    }

    let snap = server.metrics().snapshot();
    let json = Json::obj(vec![
        ("bench", Json::Str("recost".to_string())),
        ("config", Json::Str(config.name.to_string())),
        ("quick", Json::Bool(quick)),
        ("iters", Json::UInt(ITERS as u64)),
        ("recost_threshold", Json::Float(0.5)),
        ("views", Json::Arr(view_json)),
        (
            "fragment_cache",
            Json::obj(vec![
                ("hits", Json::UInt(snap.counter("cache.fragment.hits"))),
                ("misses", Json::UInt(snap.counter("cache.fragment.misses"))),
                (
                    "evictions",
                    Json::UInt(snap.counter("cache.fragment.evictions")),
                ),
                ("bytes", Json::UInt(snap.counter("cache.fragment.bytes"))),
            ]),
        ),
        ("oracle_recost", Json::UInt(snap.counter("oracle.recost"))),
        (
            "oracle_actual_hits",
            Json::UInt(snap.counter("oracle.actual_hits")),
        ),
    ]);
    let dir = std::path::Path::new("target/bench-results");
    std::fs::create_dir_all(dir).expect("create bench-results dir");
    let path = dir.join("BENCH_recost.json");
    std::fs::write(&path, json.render_pretty() + "\n").expect("write BENCH_recost.json");
    println!("(machine-readable results written to {})", path.display());
}
