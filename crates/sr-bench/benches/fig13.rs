//! **Figure 13** — Query 1, Configuration A: execution times of all 512
//! plans, plotted against the number of tuple streams per plan.
//!
//! Panels: (a) query-only time without view-tree reduction, (b) query-only
//! time with reduction, (c) total time with reduction. The paper reports:
//! non-reduced — outer-union 16% and fully-partitioned 24% slower than
//! optimal; reduced — the ten fastest reduced plans 2.5× faster than the
//! ten fastest non-reduced ones, optimal 2.6–4.3× faster than outer-union
//! and fully partitioned; 101 plans timed out (5-minute limit).

use silkroute::{query1_tree, sweep_all_plans, QueryStyle};
use sr_bench::{markers, min_by, print_panel, setup, write_csv};

fn main() {
    println!("=== Figure 13: Query 1, Configuration A (512-plan sweep) ===\n");
    let config = silkroute::Config::a();
    let server = setup(&config);
    let tree = query1_tree(server.database());
    assert_eq!(tree.edge_count(), 9);
    let timeout = Some(config.timeout);

    println!("sweeping 512 plans without reduction…");
    let plain = sweep_all_plans(&tree, &server, false, QueryStyle::OuterJoin, timeout)
        .expect("non-reduced sweep");
    println!("sweeping 512 plans with reduction…\n");
    let reduced = sweep_all_plans(&tree, &server, true, QueryStyle::OuterJoin, timeout)
        .expect("reduced sweep");

    let mk_plain = markers(&tree, &server, false, timeout);
    let mk_reduced = markers(&tree, &server, true, timeout);

    print_panel("(a) query time, non-reduced", &plain, &mk_plain, true);
    print_panel(
        "(b) query time, with reduction",
        &reduced,
        &mk_reduced,
        true,
    );
    print_panel(
        "(c) total time, with reduction",
        &reduced,
        &mk_reduced,
        false,
    );

    // The paper's headline cross-panel ratio: ten fastest reduced vs ten
    // fastest non-reduced (query time).
    let top10 = |ms: &[silkroute::Measurement]| -> f64 {
        let mut q: Vec<f64> = ms
            .iter()
            .filter(|m| !m.timed_out)
            .map(|m| m.query_ms)
            .collect();
        q.sort_by(f64::total_cmp);
        q.iter().take(10).sum::<f64>() / 10.0
    };
    println!(
        "ten fastest reduced vs non-reduced (query time): {:.2}x (paper: ~2.5x)",
        top10(&plain) / top10(&reduced)
    );
    let (best_total, _) = min_by(&reduced, |m| m.total_ms);
    println!(
        "total time: outer-union {:.2}x optimal (paper: 4x), partitioned {:.2}x (paper: 3x)",
        mk_reduced.unified_ou.total_ms / best_total,
        mk_reduced.partitioned.total_ms / best_total
    );

    write_csv("fig13_nonreduced", &plain);
    write_csv("fig13_reduced", &reduced);
    sr_bench::svg::write_svg(
        "fig13a",
        &sr_bench::svg::scatter_svg(
            "Query 1, Config A: query time (non-reduced)",
            &plain,
            &mk_plain,
            true,
        ),
    );
    sr_bench::svg::write_svg(
        "fig13b",
        &sr_bench::svg::scatter_svg(
            "Query 1, Config A: query time (reduced)",
            &reduced,
            &mk_reduced,
            true,
        ),
    );
    sr_bench::svg::write_svg(
        "fig13c",
        &sr_bench::svg::scatter_svg(
            "Query 1, Config A: total time (reduced)",
            &reduced,
            &mk_reduced,
            false,
        ),
    );
}
