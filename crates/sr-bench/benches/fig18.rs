//! **Figure 18** — the plans selected by the greedy algorithm, and §5.1's
//! oracle-request counts.
//!
//! The paper shows, for Query 1/Query 2 × Config A/Config B, the mandatory
//! (solid) and optional (dashed) edges genPlan selects: 32/16/32/8 plans
//! respectively, and reports 22 (non-reduced) / 25 (reduced) cost-estimate
//! requests against the 81 (=9²) worst case. We print the same artifacts,
//! plus where the generated plans rank in the measured 512-plan ordering
//! (Config A only — the paper's "the generated plans correspond directly to
//! the fastest plans measured").

use silkroute::{calibrated_params, gen_plan, sweep_all_plans, Oracle, PlanSpec, QueryStyle};
use sr_viewtree::{EdgeSet, ViewTree};

fn describe_edges(tree: &ViewTree, set: EdgeSet) -> String {
    set.iter()
        .map(|e| format!("{}→{}", tree.node(e).skolem_name(), tree.node(e).tag))
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    println!("=== Figure 18: plans selected by the greedy algorithm ===\n");
    for config in [silkroute::Config::a(), silkroute::Config::b()] {
        let server = sr_bench::setup(&config);
        for (qname, tree) in [
            ("Query 1", silkroute::query1_tree(server.database())),
            ("Query 2", silkroute::query2_tree(server.database())),
        ] {
            for reduce in [false, true] {
                let oracle = Oracle::new(&server, calibrated_params(config.scale));
                let r = gen_plan(&tree, server.database(), &oracle, reduce).expect("genPlan");
                println!(
                    "{qname}, Config {}, {}:",
                    config.name,
                    if reduce { "reduced" } else { "non-reduced" }
                );
                println!("  mandatory: {}", describe_edges(&tree, r.mandatory));
                println!("  optional : {}", describe_edges(&tree, r.optional));
                println!(
                    "  plans: {} | oracle requests: {} (§5.1 paper: 22 non-reduced / 25 reduced; worst case |E|² = {})",
                    r.plans().len(),
                    r.oracle_requests,
                    tree.edge_count() * tree.edge_count()
                );

                // On Config A, rank the generated plans within the measured
                // 512-plan ordering (total time).
                if config.name == "A" && reduce {
                    println!("  measuring all 512 plans for ranking…");
                    let sweep = sweep_all_plans(
                        &tree,
                        &server,
                        reduce,
                        QueryStyle::OuterJoin,
                        Some(config.timeout),
                    )
                    .expect("sweep");
                    let mut order: Vec<&silkroute::Measurement> =
                        sweep.iter().filter(|m| !m.timed_out).collect();
                    order.sort_by(|a, b| a.total_ms.total_cmp(&b.total_ms));
                    let bits: std::collections::HashSet<u64> =
                        r.plans().iter().map(|s| s.bits()).collect();
                    let ranks: Vec<usize> = order
                        .iter()
                        .enumerate()
                        .filter(|(_, m)| bits.contains(&m.edge_bits))
                        .map(|(i, _)| i + 1)
                        .collect();
                    println!(
                        "  generated plans' measured ranks (of {}): {:?}",
                        order.len(),
                        ranks
                    );
                    println!(
                        "  (paper: the generated plans correspond to the fastest {} plans)",
                        r.plans().len()
                    );
                }
                // Placeholder spec use to keep the type exercised.
                let _ = PlanSpec {
                    edges: r.recommended(),
                    reduce,
                    style: QueryStyle::OuterJoin,
                };
                println!();
            }
        }
    }
}
