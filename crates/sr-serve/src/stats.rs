//! Building and rendering the live STATS snapshot.
//!
//! A running `serve` process answers [`crate::frame::Request::Stats`] with
//! one JSON object (see `docs/OBSERVABILITY.md` for the schema) combining:
//!
//! * server identity and uptime,
//! * admission state (slots, queue, per-client usage, cause-labeled
//!   rejections),
//! * the rolling 1 s / 10 s / 60 s windows of every windowed instrument,
//! * the full cumulative counter/histogram snapshot.
//!
//! The JSON is the single wire format; [`prometheus_text`] re-renders the
//! *same* snapshot into Prometheus exposition text on the client side
//! (`silkroute stats --prom`), so the server never speaks two formats.

use std::time::Duration;

use sr_engine::FragmentCacheInfo;
use sr_obs::{Json, MetricsRegistry};

use crate::admit::Admission;

/// Schema version carried in the snapshot, bumped on breaking changes.
pub const STATS_PROTO: u64 = 1;

/// One connected client as seen by the server: connection registry data
/// joined with the admission controller's live slot usage.
#[derive(Debug, Clone)]
pub struct ClientStat {
    /// Connection id (the same id the query log records).
    pub id: u64,
    /// Peer address, or `"?"` when the socket could not tell us.
    pub addr: String,
    /// Queries this connection has submitted.
    pub queries: u64,
    /// Queries of this connection currently holding an admission slot.
    pub running: usize,
    /// Seconds since the connection was accepted.
    pub connected_s: f64,
}

/// Query-log health carried in the snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct QlogStat {
    /// Whether `--query-log` is active.
    pub enabled: bool,
    /// Records written to the file so far.
    pub written: u64,
    /// Records dropped because the bounded channel was full.
    pub dropped: u64,
    /// Slow-query records (elapsed ≥ `--slow-ms`) among the written ones.
    pub slow: u64,
}

/// Everything the snapshot builder needs, borrowed from the server.
pub struct StatsSources<'a> {
    /// Time since the server started accepting.
    pub uptime: Duration,
    /// Whether a graceful drain is under way.
    pub draining: bool,
    /// Connections currently open.
    pub active_conns: usize,
    /// The configured connection cap.
    pub max_conns: usize,
    /// Engine execution mode (`tuple` / `vectorized`).
    pub exec_mode: String,
    /// Engine shard fan-out.
    pub shards: usize,
    /// The admission controller.
    pub admission: &'a Admission,
    /// The shared metrics registry.
    pub metrics: &'a MetricsRegistry,
    /// Per-client rows (already joined with admission usage).
    pub clients: Vec<ClientStat>,
    /// Query-log health.
    pub qlog: QlogStat,
    /// Materialized-fragment cache occupancy (`None` = cache disabled).
    pub fragment_cache: Option<FragmentCacheInfo>,
}

/// Build the STATS snapshot JSON.
pub fn build(src: &StatsSources<'_>) -> Json {
    let snap = src.metrics.snapshot();
    let cfg = src.admission.config();
    let rejected = |cause: &str| Json::UInt(snap.counter(&format!("serve.rejected.{cause}")));
    let clients = Json::Arr(
        src.clients
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("id", Json::UInt(c.id)),
                    ("addr", Json::Str(c.addr.clone())),
                    ("running", Json::UInt(c.running as u64)),
                    ("queries", Json::UInt(c.queries)),
                    ("connected_s", Json::Float(c.connected_s)),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("proto", Json::UInt(STATS_PROTO)),
        ("uptime_s", Json::Float(src.uptime.as_secs_f64())),
        ("draining", Json::Bool(src.draining)),
        ("exec_mode", Json::Str(src.exec_mode.clone())),
        ("shards", Json::UInt(src.shards as u64)),
        (
            "connections",
            Json::obj(vec![
                ("active", Json::UInt(src.active_conns as u64)),
                ("max", Json::UInt(src.max_conns as u64)),
                ("total", Json::UInt(snap.counter("serve.connections"))),
            ]),
        ),
        (
            "admission",
            Json::obj(vec![
                ("slots", Json::UInt(cfg.slots as u64)),
                ("per_client", Json::UInt(cfg.per_client as u64)),
                ("queue_depth", Json::UInt(cfg.queue_depth as u64)),
                ("in_flight", Json::UInt(src.admission.in_flight() as u64)),
                ("queue_len", Json::UInt(src.admission.queue_len() as u64)),
                ("admitted", Json::UInt(snap.counter("serve.admitted"))),
                (
                    "rejected",
                    Json::obj(vec![
                        ("total", Json::UInt(snap.counter("serve.rejected"))),
                        ("queue_full", rejected("queue_full")),
                        ("quota", rejected("quota")),
                        ("max_conns", rejected("max_conns")),
                        ("draining", rejected("draining")),
                    ]),
                ),
            ]),
        ),
        ("clients", clients),
        (
            "fragment_cache",
            match src.fragment_cache {
                Some(i) => Json::obj(vec![
                    ("enabled", Json::Bool(true)),
                    ("budget", Json::UInt(i.budget as u64)),
                    ("bytes", Json::UInt(i.bytes as u64)),
                    ("entries", Json::UInt(i.entries as u64)),
                ]),
                None => Json::obj(vec![("enabled", Json::Bool(false))]),
            },
        ),
        (
            "qlog",
            Json::obj(vec![
                ("enabled", Json::Bool(src.qlog.enabled)),
                ("written", Json::UInt(src.qlog.written)),
                ("dropped", Json::UInt(src.qlog.dropped)),
                ("slow", Json::UInt(src.qlog.slow)),
            ]),
        ),
        ("windows", src.metrics.windows_json()),
        ("cumulative", snap.to_json_value()),
    ])
}

/// A metric name as Prometheus wants it: `[a-zA-Z_:][a-zA-Z0-9_:]*`,
/// prefixed with `silkroute_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10);
    out.push_str("silkroute_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn push_metric(out: &mut String, name: &str, kind: &str, labels: &str, value: f64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# TYPE {name} {kind}");
    if value.fract() == 0.0 && value.abs() < 9e15 {
        let _ = writeln!(out, "{name}{labels} {}", value as i64);
    } else {
        let _ = writeln!(out, "{name}{labels} {value}");
    }
}

fn num(j: Option<&Json>) -> f64 {
    j.and_then(Json::as_f64).unwrap_or(0.0)
}

/// Render a STATS snapshot (the JSON from [`build`]) as Prometheus text
/// exposition. Counters become `_total` counters, window quantiles become
/// gauges labeled `{window,quantile}`, cumulative histograms become
/// `_count`/`_sum` pairs.
pub fn prometheus_text(stats: &Json) -> String {
    let mut out = String::new();
    push_metric(
        &mut out,
        "silkroute_uptime_seconds",
        "gauge",
        "",
        num(stats.get("uptime_s")),
    );
    push_metric(
        &mut out,
        "silkroute_draining",
        "gauge",
        "",
        if matches!(stats.get("draining"), Some(Json::Bool(true))) {
            1.0
        } else {
            0.0
        },
    );
    if let Some(conns) = stats.get("connections") {
        push_metric(
            &mut out,
            "silkroute_connections_active",
            "gauge",
            "",
            num(conns.get("active")),
        );
    }
    if let Some(adm) = stats.get("admission") {
        for key in ["in_flight", "queue_len"] {
            push_metric(
                &mut out,
                &format!("silkroute_{key}"),
                "gauge",
                "",
                num(adm.get(key)),
            );
        }
        if let Some(Json::Obj(rej)) = adm.get("rejected") {
            let _ = {
                use std::fmt::Write as _;
                writeln!(out, "# TYPE silkroute_rejected_total counter")
            };
            for (cause, v) in rej {
                if cause == "total" {
                    continue;
                }
                use std::fmt::Write as _;
                let _ = writeln!(
                    out,
                    "silkroute_rejected_total{{cause=\"{cause}\"}} {}",
                    v.as_f64().unwrap_or(0.0) as u64
                );
            }
        }
    }
    // Rolling windows: every windowed histogram's quantiles and rates.
    if let Some(wins) = stats.get("windows") {
        if let Some(Json::Obj(hists)) = wins.get("histograms") {
            for (name, windows) in hists {
                let base = prom_name(name);
                if let Json::Obj(per_window) = windows {
                    use std::fmt::Write as _;
                    let _ = writeln!(out, "# TYPE {base} gauge");
                    for (w, stats) in per_window {
                        for q in ["p50", "p99", "p999"] {
                            let _ = writeln!(
                                out,
                                "{base}{{window=\"{w}\",quantile=\"{q}\"}} {}",
                                num(stats.get(q))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{base}_rate{{window=\"{w}\"}} {}",
                            num(stats.get("rate"))
                        );
                    }
                }
            }
        }
        if let Some(Json::Obj(ctrs)) = wins.get("counters") {
            for (name, windows) in ctrs {
                let base = prom_name(name);
                if let Json::Obj(per_window) = windows {
                    use std::fmt::Write as _;
                    let _ = writeln!(out, "# TYPE {base}_rate gauge");
                    for (w, stats) in per_window {
                        let _ = writeln!(
                            out,
                            "{base}_rate{{window=\"{w}\"}} {}",
                            num(stats.get("rate"))
                        );
                    }
                }
            }
        }
    }
    // Cumulative registry: counters as counters, histograms as count/sum.
    if let Some(cum) = stats.get("cumulative") {
        if let Some(Json::Obj(counters)) = cum.get("counters") {
            for (name, v) in counters {
                push_metric(
                    &mut out,
                    &format!("{}_total", prom_name(name)),
                    "counter",
                    "",
                    v.as_f64().unwrap_or(0.0),
                );
            }
        }
        if let Some(Json::Obj(hists)) = cum.get("histograms") {
            for (name, h) in hists {
                let base = prom_name(name);
                use std::fmt::Write as _;
                let _ = writeln!(out, "# TYPE {base} summary");
                let _ = writeln!(out, "{base}_count {}", num(h.get("count")) as u64);
                let _ = writeln!(out, "{base}_sum {}", num(h.get("sum")) as u64);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admit::AdmitConfig;
    use std::sync::Arc;

    fn sample() -> Json {
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.counter("serve.requests").inc();
        metrics.counter("serve.rejected").inc();
        metrics.counter("serve.rejected.queue_full").inc();
        metrics.histogram("serve.queue_wait_ms").record(3);
        metrics.windowed_histogram("serve.request_ms").record(12);
        metrics.windowed_counter("serve.rows").add(100);
        let admission = Admission::new(AdmitConfig::default(), Arc::clone(&metrics));
        build(&StatsSources {
            uptime: Duration::from_millis(1500),
            draining: false,
            active_conns: 2,
            max_conns: 64,
            exec_mode: "tuple".into(),
            shards: 1,
            admission: &admission,
            metrics: &metrics,
            clients: vec![ClientStat {
                id: 1,
                addr: "127.0.0.1:9".into(),
                queries: 4,
                running: 1,
                connected_s: 1.0,
            }],
            qlog: QlogStat {
                enabled: true,
                written: 4,
                dropped: 0,
                slow: 1,
            },
            fragment_cache: Some(FragmentCacheInfo {
                budget: 1 << 20,
                bytes: 512,
                entries: 2,
            }),
        })
    }

    #[test]
    fn snapshot_has_schema_keys() {
        let j = sample();
        for key in [
            "proto",
            "uptime_s",
            "draining",
            "connections",
            "admission",
            "clients",
            "fragment_cache",
            "qlog",
            "windows",
            "cumulative",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        let rej = j.get("admission").unwrap().get("rejected").unwrap();
        assert_eq!(rej.get("total").unwrap().as_f64(), Some(1.0));
        assert_eq!(rej.get("queue_full").unwrap().as_f64(), Some(1.0));
        // Round-trips through the parser (what the client does).
        let back = Json::parse(&j.render()).expect("parse");
        assert_eq!(num(back.get("uptime_s")), 1.5);
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let text = prometheus_text(&sample());
        assert!(text.contains("# TYPE silkroute_uptime_seconds gauge"));
        assert!(text.contains("silkroute_rejected_total{cause=\"queue_full\"} 1"));
        assert!(text.contains("silkroute_serve_request_ms{window=\"60s\",quantile=\"p99\"}"));
        assert!(text.contains("silkroute_serve_requests_total 1"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }
}
