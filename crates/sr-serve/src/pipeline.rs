//! Request execution: resolve a view, plan it, run the component queries,
//! and stream the result back as response frames.
//!
//! This is the same generate → execute-streaming → tag loop the CLI's
//! `materialize` command runs in-process, re-shaped for a connection: the
//! output goes through a chunking frame writer instead of a file, and every
//! component stream registers its cancel handle with the connection so a
//! disconnect (or an explicit CANCEL frame) aborts the producers mid-query.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sr_engine::{EngineError, Server};
use sr_obs::Tracer;
use sr_plan::Recoster;
use sr_sqlgen::{generate_queries, PlanSpec, QueryStyle};
use sr_tagger::{tag_streams_traced, RowSource, StreamInput, TagError};
use sr_viewtree::{EdgeSet, ViewTree};

use crate::frame::{DoneStats, ErrorCode, Format, Response, ViewRef, DOC_CHANNEL};

/// Named views the server is willing to materialize. Built by the caller
/// (the CLI registers the paper's `query1` / `query2`); sr-serve itself has
/// no opinion about which views exist.
#[derive(Default)]
pub struct ViewCatalog {
    views: BTreeMap<String, Arc<ViewTree>>,
}

impl ViewCatalog {
    /// An empty catalog (only inline RXL requests will resolve).
    pub fn new() -> ViewCatalog {
        ViewCatalog::default()
    }

    /// Register a view under a name; replaces any previous binding.
    pub fn insert(&mut self, name: impl Into<String>, tree: ViewTree) -> &mut Self {
        self.views.insert(name.into(), Arc::new(tree));
        self
    }

    /// Look up a registered view.
    pub fn get(&self, name: &str) -> Option<Arc<ViewTree>> {
        self.views.get(name).cloned()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.views.keys().map(String::as_str).collect()
    }
}

/// A failure while serving one request.
#[derive(Debug)]
pub enum PipelineError {
    /// Reportable to the client as an error frame.
    Typed {
        /// Wire error category.
        code: ErrorCode,
        /// Detail message.
        message: String,
    },
    /// The client connection itself broke while writing the response;
    /// there is nobody left to send an error frame to.
    ClientGone(std::io::Error),
}

impl PipelineError {
    fn typed(code: ErrorCode, message: impl Into<String>) -> PipelineError {
        PipelineError::Typed {
            code,
            message: message.into(),
        }
    }
}

/// Map an engine failure onto its wire error category.
fn engine_code(e: &EngineError) -> ErrorCode {
    match e {
        EngineError::Timeout { .. } => ErrorCode::Timeout,
        EngineError::Cancelled => ErrorCode::Cancelled,
        EngineError::Internal(_) | EngineError::TruncatedStream { .. } => ErrorCode::Internal,
        _ => ErrorCode::Engine,
    }
}

fn engine_err(e: EngineError) -> PipelineError {
    PipelineError::typed(engine_code(&e), e.to_string())
}

/// Resolve the request's view reference against the catalog (named) or the
/// RXL front-end (inline source).
pub fn resolve_view(
    catalog: &ViewCatalog,
    db: &sr_data::Database,
    view: &ViewRef,
) -> Result<Arc<ViewTree>, PipelineError> {
    match view {
        ViewRef::Named(name) => catalog.get(name).ok_or_else(|| {
            PipelineError::typed(
                ErrorCode::UnknownView,
                format!(
                    "unknown view {name:?}; registered: {}",
                    catalog.names().join(", ")
                ),
            )
        }),
        ViewRef::Rxl(src) => {
            // Inline source is untrusted client input: anything wrong with
            // the *text* — including tripping the parser's nesting-depth
            // guard — is the client's BAD_QUERY, not a server-side Engine
            // failure.
            let q = sr_rxl::parse(src).map_err(|e| {
                PipelineError::typed(ErrorCode::BadQuery, format!("parse error: {e}"))
            })?;
            let tree = sr_viewtree::build(&q, db).map_err(|e| {
                PipelineError::typed(ErrorCode::BadQuery, format!("build error: {e}"))
            })?;
            Ok(Arc::new(tree))
        }
    }
}

/// What composing a request's XPath with its view produced.
pub enum XPathResolution {
    /// No XPath on the request: materialize the full view.
    Full(Arc<ViewTree>),
    /// The view tree pruned to what the path touches, predicates pushed
    /// into the retained rule bodies.
    Pruned {
        /// The pruned tree the request plans and runs against.
        tree: Arc<ViewTree>,
        /// Nodes the path pruned away (for `query.pruned_nodes`).
        pruned_nodes: usize,
    },
    /// The path statically matches nothing: the response is an empty
    /// document and no SQL runs at all.
    Empty {
        /// The whole view counts as pruned.
        pruned_nodes: usize,
    },
}

/// Compose the request's optional XPath with the resolved view. Path text
/// that fails to parse, or a path the composer cannot push into this view
/// (predicate across a `*`/`+` edge, multi-node step, …) is the client's
/// [`ErrorCode::BadQuery`].
pub fn resolve_xpath(
    tree: Arc<ViewTree>,
    xpath: Option<&str>,
) -> Result<XPathResolution, PipelineError> {
    let Some(src) = xpath else {
        return Ok(XPathResolution::Full(tree));
    };
    let path = sr_xpath::parse(src)
        .map_err(|e| PipelineError::typed(ErrorCode::BadQuery, format!("xpath error: {e}")))?;
    match sr_xpath::compose(&tree, &path) {
        Ok(c) => Ok(XPathResolution::Pruned {
            pruned_nodes: c.pruned_nodes,
            tree: Arc::new(c.tree),
        }),
        Err(sr_xpath::ComposeError::NoMatch) => Ok(XPathResolution::Empty {
            pruned_nodes: tree.nodes.len(),
        }),
        Err(e) => Err(PipelineError::typed(
            ErrorCode::BadQuery,
            format!("xpath error: {e}"),
        )),
    }
}

/// The server-side context that makes `greedy` a servable plan spec: a
/// shared [`Recoster`] (learned re-costing state), the view's feedback key,
/// and the engine whose catalog and stats planning runs against.
pub struct RecostContext<'a> {
    /// Shared learned-actuals + per-view plan state.
    pub recoster: &'a Recoster,
    /// Feedback key identifying the view (name, or inline source).
    pub view_key: &'a str,
    /// The engine to plan against.
    pub engine: &'a Server,
}

/// Parse a wire plan-spec string: `unified` | `partitioned` | `outer-union`
/// | `edges:<bits>` are deterministic and always accepted. `greedy`
/// consults the cost oracle and is only servable when the caller supplies a
/// [`RecostContext`] — the learned re-coster then plans the view (serving a
/// cached spec until accumulated Q-error triggers a re-plan); without one,
/// requesting it over the wire remains a typed error.
pub fn resolve_plan(
    tree: &ViewTree,
    plan: &str,
    recost: Option<&RecostContext<'_>>,
) -> Result<PlanSpec, PipelineError> {
    let spec = match plan {
        "" | "unified" => PlanSpec {
            edges: EdgeSet::full(tree),
            reduce: true,
            style: QueryStyle::OuterJoin,
        },
        "partitioned" => PlanSpec {
            edges: EdgeSet::empty(),
            reduce: true,
            style: QueryStyle::OuterJoin,
        },
        "outer-union" => PlanSpec::sorted_outer_union(tree),
        "greedy" => match recost {
            Some(rc) => {
                return rc
                    .recoster
                    .plan(rc.view_key, tree, rc.engine)
                    .map_err(engine_err)
            }
            None => {
                return Err(PipelineError::typed(
                    ErrorCode::BadPlan,
                    "greedy planning needs the server's re-coster; pick a plan with \
                     `silkroute plan` and submit it as edges:<bits>",
                ))
            }
        },
        other => match other.strip_prefix("edges:") {
            Some(bits) => PlanSpec {
                edges: EdgeSet::from_bits(bits.parse().map_err(|e| {
                    PipelineError::typed(ErrorCode::BadPlan, format!("bad edge bits: {e}"))
                })?),
                reduce: true,
                style: QueryStyle::OuterJoin,
            },
            None => {
                return Err(PipelineError::typed(
                    ErrorCode::BadPlan,
                    format!("unknown plan spec {other:?}"),
                ))
            }
        },
    };
    Ok(spec)
}

/// The cancel tokens of every component stream a connection currently has
/// in flight, plus a sticky cancelled flag so a disconnect that races
/// stream registration still wins.
#[derive(Default)]
pub struct CancelRegistry {
    inner: Mutex<RegistryState>,
}

#[derive(Default)]
struct RegistryState {
    tokens: Vec<sr_engine::CancelToken>,
    cancelled: bool,
}

impl CancelRegistry {
    /// Empty registry.
    pub fn new() -> CancelRegistry {
        CancelRegistry::default()
    }

    /// Register a stream's cancel handle. If the connection already died,
    /// the token is cancelled on the spot instead of stored.
    pub fn register(&self, token: sr_engine::CancelToken) {
        let mut st = self.inner.lock().expect("cancel registry lock");
        if st.cancelled {
            token.cancel();
        } else {
            st.tokens.push(token);
        }
    }

    /// Cancel everything registered and everything registered later.
    pub fn cancel_all(&self) {
        let mut st = self.inner.lock().expect("cancel registry lock");
        st.cancelled = true;
        for t in st.tokens.drain(..) {
            t.cancel();
        }
    }

    /// Whether [`CancelRegistry::cancel_all`] has fired.
    pub fn is_cancelled(&self) -> bool {
        self.inner.lock().expect("cancel registry lock").cancelled
    }

    /// Forget the current request's tokens (it completed); the sticky
    /// cancelled flag is cleared so the connection can run another query.
    pub fn reset(&self) {
        let mut st = self.inner.lock().expect("cancel registry lock");
        st.tokens.clear();
        st.cancelled = false;
    }
}

/// Target payload size for a chunk frame. Small enough that cancellation
/// latency stays low (the writer surfaces between chunks), large enough
/// that framing overhead disappears into the noise.
const CHUNK_BYTES: usize = 32 * 1024;

/// Rows per tuple-mode chunk.
const CHUNK_ROWS: usize = 1024;

/// An `io::Write` that packages bytes into `RESP_CHUNK` frames on an
/// underlying writer. The tagger writes the XML document into this.
struct FrameChunkWriter<'a, W: Write> {
    out: &'a mut W,
    buf: Vec<u8>,
    shipped: u64,
    /// Time spent inside the underlying writer (frame encode + socket
    /// write, i.e. client backpressure) — the `encode_ms` of the request's
    /// timing breakdown.
    write_ns: u64,
}

impl<'a, W: Write> FrameChunkWriter<'a, W> {
    fn new(out: &'a mut W) -> Self {
        FrameChunkWriter {
            out,
            buf: Vec::with_capacity(CHUNK_BYTES),
            shipped: 0,
            write_ns: 0,
        }
    }

    fn ship(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.shipped += self.buf.len() as u64;
        let started = Instant::now();
        let frame = Response::Chunk {
            channel: DOC_CHANNEL,
            data: std::mem::take(&mut self.buf),
        }
        .encode();
        self.buf = Vec::with_capacity(CHUNK_BYTES);
        let r = self.out.write_all(&frame);
        self.write_ns += started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        r
    }
}

impl<W: Write> Write for FrameChunkWriter<'_, W> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        if self.buf.len() >= CHUNK_BYTES {
            self.ship()?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.ship()?;
        self.out.flush()
    }
}

/// What [`run_query`] reports beyond the wire-visible [`DoneStats`]: the
/// per-phase timing breakdown and per-request context for the query log
/// and the windowed instruments.
#[derive(Debug)]
pub struct RunStats {
    /// The DONE-frame summary.
    pub done: DoneStats,
    /// View planning + SQL generation time.
    pub plan_ms: f64,
    /// Time inside the response writer (frame encode + socket write,
    /// including client backpressure).
    pub encode_ms: f64,
    /// Whether every component plan came out of the prepared-plan cache
    /// (best-effort: sampled from the shared counter, so concurrent
    /// requests can inflate it).
    pub cache_hit: bool,
    /// The generated component SQL, in stream order — what a slow-query
    /// capture re-runs under EXPLAIN ANALYZE.
    pub sqls: Vec<String>,
    /// Actual rows each component stream produced, in stream order
    /// (parallel to `sqls`) — the feedback the learned re-coster consumes.
    pub per_stream_rows: Vec<u64>,
}

/// Execute one already-admitted query request end to end, writing chunk
/// frames to `out`. Returns the stats for the DONE frame plus the timing
/// breakdown; the caller sends DONE / ERROR itself.
///
/// When `tracer` is set, every component stream and the tagger merge
/// record into it — the serve layer arms one per request when `--slow-ms`
/// is active and writes the trace out only if the request turns out slow.
pub fn run_query<W: Write>(
    engine: &Server,
    tree: &ViewTree,
    format: Format,
    spec: PlanSpec,
    cancels: &CancelRegistry,
    out: &mut W,
    tracer: Option<&Arc<Tracer>>,
) -> Result<RunStats, PipelineError> {
    let started = Instant::now();
    if cancels.is_cancelled() {
        return Err(engine_err(EngineError::Cancelled));
    }
    let queries = generate_queries(tree, engine.database(), spec).map_err(engine_err)?;
    let streams = queries.len() as u64;
    let plan_ms = started.elapsed().as_secs_f64() * 1e3;
    let cache_hits_before = engine
        .metrics()
        .snapshot()
        .counter("server.plan_cache_hits");
    let mut sqls = Vec::with_capacity(queries.len());
    let mut per_stream_rows: Vec<u64> = Vec::with_capacity(queries.len());

    let run = match format {
        Format::Xml => {
            let mut inputs = Vec::with_capacity(queries.len());
            for (i, q) in queries.into_iter().enumerate() {
                let mut stream = engine.execute_sql_streaming(&q.sql).map_err(engine_err)?;
                cancels.register(stream.cancel_handle());
                if let Some(t) = tracer {
                    stream.set_trace(t, &format!("stream {i}"));
                }
                sqls.push(q.sql);
                inputs.push(StreamInput {
                    schema: stream.schema.clone(),
                    rows: RowSource::Stream(Box::new(stream)),
                    reduced: q.reduced,
                });
            }
            let mut writer = FrameChunkWriter::new(out);
            let stats =
                match tag_streams_traced(tree, inputs, &mut writer, false, tracer.map(|t| &**t)) {
                    Ok((stats, _)) => stats,
                    // An Io failure here is the *client* socket, not the
                    // engine: the peer went away mid-response.
                    Err(TagError::Io(e)) => return Err(PipelineError::ClientGone(e)),
                    Err(TagError::Engine(e)) => return Err(engine_err(e)),
                    Err(e @ (TagError::Structure(_) | TagError::MalformedTree(_))) => {
                        return Err(PipelineError::typed(ErrorCode::Internal, e.to_string()))
                    }
                };
            writer.flush().map_err(PipelineError::ClientGone)?;
            per_stream_rows = stats.per_stream.iter().map(|s| s.tuples).collect();
            let shipped = writer.shipped;
            let encode_ms = writer.write_ns as f64 / 1e6;
            RunStats {
                done: DoneStats {
                    tuples: stats.tuples,
                    elements: stats.elements,
                    bytes: shipped,
                    streams,
                    elapsed_us: started.elapsed().as_micros().min(u64::MAX as u128) as u64,
                },
                plan_ms,
                encode_ms,
                cache_hit: false,
                sqls: Vec::new(),
                per_stream_rows: Vec::new(),
            }
        }
        Format::Tuples => {
            let mut tuples = 0u64;
            let mut bytes = 0u64;
            let mut write_ns = 0u64;
            for (i, q) in queries.into_iter().enumerate() {
                let mut stream = engine.execute_sql_streaming(&q.sql).map_err(engine_err)?;
                cancels.register(stream.cancel_handle());
                if let Some(t) = tracer {
                    stream.set_trace(t, &format!("stream {i}"));
                }
                sqls.push(q.sql);
                let mut batch = Vec::with_capacity(CHUNK_ROWS);
                loop {
                    let row = stream.next_row().map_err(engine_err)?;
                    let done = row.is_none();
                    if let Some(r) = row {
                        batch.push(r);
                    }
                    if batch.len() >= CHUNK_ROWS || (done && !batch.is_empty()) {
                        tuples += batch.len() as u64;
                        let enc_started = Instant::now();
                        let data = sr_engine::wire::encode_rows(&batch).to_vec();
                        batch.clear();
                        bytes += data.len() as u64;
                        let frame = Response::Chunk {
                            channel: i as u16,
                            data,
                        }
                        .encode();
                        let r = out.write_all(&frame);
                        write_ns += enc_started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                        r.map_err(PipelineError::ClientGone)?;
                    }
                    if done {
                        break;
                    }
                }
            }
            out.flush().map_err(PipelineError::ClientGone)?;
            RunStats {
                done: DoneStats {
                    tuples,
                    elements: 0,
                    bytes,
                    streams,
                    elapsed_us: started.elapsed().as_micros().min(u64::MAX as u128) as u64,
                },
                plan_ms,
                encode_ms: write_ns as f64 / 1e6,
                cache_hit: false,
                sqls: Vec::new(),
                per_stream_rows: Vec::new(),
            }
        }
    };
    let cache_hits_after = engine
        .metrics()
        .snapshot()
        .counter("server.plan_cache_hits");
    Ok(RunStats {
        cache_hit: streams > 0 && cache_hits_after - cache_hits_before >= streams,
        sqls,
        per_stream_rows,
        ..run
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_specs_parse() {
        let db = sr_tpch::generate(sr_tpch::Scale::mb(0.05)).expect("tpch");
        let tree = {
            let q = sr_rxl::parse(
                "from Supplier $s construct <supplier> <name>$s.name</name> </supplier>",
            )
            .expect("rxl");
            sr_viewtree::build(&q, &db).expect("build")
        };
        assert!(resolve_plan(&tree, "unified", None).is_ok());
        assert!(resolve_plan(&tree, "", None).is_ok());
        assert!(resolve_plan(&tree, "partitioned", None).is_ok());
        assert!(resolve_plan(&tree, "outer-union", None).is_ok());
        assert!(resolve_plan(&tree, "edges:0", None).is_ok());
        // Without a re-coster, `greedy` stays a typed error; with one it
        // plans the view (and caches the spec under the feedback key).
        for bad in ["greedy", "edges:x", "bogus"] {
            match resolve_plan(&tree, bad, None) {
                Err(PipelineError::Typed { code, .. }) => assert_eq!(code, ErrorCode::BadPlan),
                other => panic!("{bad}: expected BadPlan, got {other:?}"),
            }
        }
        let engine = Server::new(Arc::new(db));
        let recoster = Recoster::new(sr_plan::RecostConfig::default());
        let ctx = RecostContext {
            recoster: &recoster,
            view_key: "v",
            engine: &engine,
        };
        assert!(resolve_plan(&tree, "greedy", Some(&ctx)).is_ok());
        assert_eq!(recoster.plan_count("v"), 1);
    }

    #[test]
    fn cancel_registry_is_sticky() {
        let reg = CancelRegistry::new();
        let tok = sr_engine::CancelToken::unbounded();
        reg.register(tok.clone());
        assert!(!tok.is_cancelled());
        reg.cancel_all();
        assert!(tok.is_cancelled());
        // Late registration after the connection died: cancelled on entry.
        let late = sr_engine::CancelToken::unbounded();
        reg.register(late.clone());
        assert!(late.is_cancelled());
        reg.reset();
        let fresh = sr_engine::CancelToken::unbounded();
        reg.register(fresh.clone());
        assert!(!fresh.is_cancelled());
    }
}
