//! A blocking client for the serve protocol — used by the CLI's `client`
//! subcommand, the load generator, and the conformance tests.

use std::io::Write;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::frame::{
    read_response, DoneStats, ErrorCode, Format, ProtoError, Request, Response, ViewRef,
    DOC_CHANNEL,
};

/// A failure observed by the client.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's byte stream violated the frame protocol.
    Proto(ProtoError),
    /// The server refused the request (admission or draining).
    Busy(String),
    /// The server executed the request and reported a failure.
    Remote {
        /// Wire error category.
        code: ErrorCode,
        /// Server-side detail.
        message: String,
    },
    /// The server sent a frame that makes no sense at this point of the
    /// exchange (or closed mid-response).
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Busy(m) => write!(f, "server busy: {m}"),
            ClientError::Remote { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Unexpected(m) => write!(f, "unexpected server frame: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(io) => ClientError::Io(io),
            other => ClientError::Proto(other),
        }
    }
}

/// A materialized response: the reassembled payload plus the DONE stats.
#[derive(Debug)]
pub struct QueryResult {
    /// XML document bytes (XML format) — empty in tuple mode.
    pub document: Vec<u8>,
    /// Per-stream wire-encoded tuple bytes (tuple format), indexed by
    /// component stream — empty in XML mode.
    pub streams: Vec<Vec<u8>>,
    /// The server's end-of-response summary.
    pub stats: DoneStats,
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    sock: TcpStream,
}

impl Client {
    /// Connect to a serve endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let sock = TcpStream::connect(addr)?;
        // Small request frames must not wait on Nagle behind the server's
        // delayed ACKs; the server disables it on its side too.
        let _ = sock.set_nodelay(true);
        Ok(Client { sock })
    }

    /// Bound every read; `None` blocks forever.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> Result<(), ClientError> {
        self.sock.set_read_timeout(t)?;
        Ok(())
    }

    /// Send an already-typed request frame.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        self.sock.write_all(&req.encode())?;
        Ok(())
    }

    /// Ship raw bytes — deliberately malformed input for protocol tests.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.sock.write_all(bytes)?;
        Ok(())
    }

    /// Read the next response frame; `Ok(None)` on clean EOF.
    pub fn read(&mut self) -> Result<Option<Response>, ClientError> {
        Ok(read_response(&mut self.sock)?)
    }

    /// Liveness round-trip.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Ping)?;
        match self.read()? {
            Some(Response::Pong) => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Submit a query and collect the entire response.
    pub fn query(
        &mut self,
        format: Format,
        view: ViewRef,
        plan: &str,
    ) -> Result<QueryResult, ClientError> {
        self.query_with_xpath(format, view, plan, None)
    }

    /// Submit a query, optionally restricted by an XPath over the virtual
    /// view, and collect the entire response.
    pub fn query_with_xpath(
        &mut self,
        format: Format,
        view: ViewRef,
        plan: &str,
        xpath: Option<&str>,
    ) -> Result<QueryResult, ClientError> {
        self.send(&Request::Query {
            format,
            view,
            plan: plan.into(),
            xpath: xpath.map(String::from),
        })?;
        let mut document = Vec::new();
        let mut streams: Vec<Vec<u8>> = Vec::new();
        loop {
            match self.read()? {
                Some(Response::Chunk { channel, data }) => {
                    if channel == DOC_CHANNEL {
                        document.extend_from_slice(&data);
                    } else {
                        let i = channel as usize;
                        if streams.len() <= i {
                            streams.resize(i + 1, Vec::new());
                        }
                        streams[i].extend_from_slice(&data);
                    }
                }
                Some(Response::Done(stats)) => {
                    return Ok(QueryResult {
                        document,
                        streams,
                        stats,
                    })
                }
                Some(Response::Error { code, message }) => {
                    return Err(ClientError::Remote { code, message })
                }
                Some(Response::Busy { message }) => return Err(ClientError::Busy(message)),
                other => return Err(unexpected(other)),
            }
        }
    }

    /// Materialize a view as XML.
    pub fn materialize(&mut self, view: ViewRef, plan: &str) -> Result<QueryResult, ClientError> {
        self.query(Format::Xml, view, plan)
    }

    /// Run an XPath over the virtual view and collect the result document.
    pub fn query_xpath(
        &mut self,
        view: ViewRef,
        plan: &str,
        xpath: &str,
    ) -> Result<QueryResult, ClientError> {
        self.query_with_xpath(Format::Xml, view, plan, Some(xpath))
    }

    /// Fetch the raw component tuple streams.
    pub fn fetch_tuples(&mut self, view: ViewRef, plan: &str) -> Result<QueryResult, ClientError> {
        self.query(Format::Tuples, view, plan)
    }

    /// Ask the server to abort whatever this connection has in flight.
    pub fn cancel(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Cancel)
    }

    /// Fetch the live telemetry snapshot as a JSON string.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.send(&Request::Stats)?;
        match self.read()? {
            Some(Response::Stats { data }) => String::from_utf8(data)
                .map_err(|e| ClientError::Unexpected(format!("non-utf8 stats payload: {e}"))),
            other => Err(unexpected(other)),
        }
    }

    /// Request a graceful server shutdown; resolves on GOODBYE.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        loop {
            match self.read()? {
                Some(Response::Goodbye) | None => return Ok(()),
                // Stray chunks from an earlier request may still drain.
                Some(Response::Chunk { .. }) | Some(Response::Done(_)) => {}
                other => return Err(unexpected(other)),
            }
        }
    }

    /// Sever the connection abruptly (no protocol goodbye) — what a
    /// crashing client looks like from the server's side.
    pub fn abort(self) {
        let _ = self.sock.shutdown(Shutdown::Both);
    }
}

fn unexpected(resp: Option<Response>) -> ClientError {
    match resp {
        None => ClientError::Unexpected("connection closed mid-exchange".into()),
        Some(r) => ClientError::Unexpected(format!("{r:?}")),
    }
}
