//! The length-prefixed frame protocol spoken between `silkroute serve` and
//! its clients.
//!
//! Every message on the wire is one **frame**:
//!
//! ```text
//! ┌────────────┬───────────┬──────────────────┐
//! │ u32 BE len │ u8 opcode │ payload (len-1 B)│
//! └────────────┴───────────┴──────────────────┘
//! ```
//!
//! `len` counts the opcode byte plus the payload, so a valid frame always
//! has `1 <= len <= MAX_FRAME_LEN`. Integers inside payloads are
//! big-endian; strings are `u16 len + UTF-8 bytes`. The format is
//! deliberately self-terminating: a reader always knows how many bytes the
//! current frame still needs, which is what lets the server bound how long
//! it will wait for a stalled client (see the connection read timeout in
//! [`crate::server`]).
//!
//! Decoding is **total**: any byte sequence either parses into a
//! [`Request`]/[`Response`] or yields a typed [`ProtoError`] — never a
//! panic, and never an unbounded read. The property tests in
//! `tests/protocol.rs` pin both directions.

use std::fmt;
use std::io::{Read, Write};

/// Hard cap on one frame's `len` field (opcode + payload). Responses chunk
/// their payloads far below this; a request claiming more is hostile or
/// corrupt and is rejected before any allocation.
pub const MAX_FRAME_LEN: usize = 8 * 1024 * 1024;

/// Chunk channel number carried by XML document chunks (tuple-mode chunks
/// use their stream index, which is always below this).
pub const DOC_CHANNEL: u16 = u16::MAX;

/// Typed protocol failure. Every malformed input maps onto one of these;
/// the server answers with an [`ErrorCode::Malformed`] error frame and
/// closes the connection.
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying socket failure.
    Io(std::io::Error),
    /// The peer closed (or stalled past the read timeout) mid-frame: some
    /// bytes of a frame arrived but the rest never did.
    Truncated {
        /// Bytes the frame still owed when the connection broke off.
        missing: usize,
    },
    /// A frame's length field exceeds [`MAX_FRAME_LEN`] (or is zero).
    BadLength {
        /// The claimed length.
        len: u64,
    },
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// The opcode was known but its payload did not parse.
    BadPayload {
        /// Which opcode's payload failed.
        opcode: u8,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "io error: {e}"),
            ProtoError::Truncated { missing } => {
                write!(f, "truncated frame: {missing} byte(s) missing")
            }
            ProtoError::BadLength { len } => {
                write!(f, "bad frame length {len} (max {MAX_FRAME_LEN})")
            }
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            ProtoError::BadPayload { opcode, reason } => {
                write!(f, "bad payload for opcode 0x{opcode:02x}: {reason}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// How a query's result should be shipped back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// The tagged XML document, as raw bytes in document order.
    Xml,
    /// The component tuple streams in the engine's wire encoding
    /// ([`sr_engine::wire`]), each chunk tagged with its stream index.
    Tuples,
}

/// What the query runs against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewRef {
    /// A view pre-registered in the server's catalog (`query1`, `query2`).
    Named(String),
    /// RXL source text shipped inline, parsed and planned per request.
    Rxl(String),
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Materialize a view and stream the result back.
    Query {
        /// Result encoding.
        format: Format,
        /// The view to materialize.
        view: ViewRef,
        /// Plan spec string: `unified` | `partitioned` | `outer-union` |
        /// `edges:<bits>`, as the CLI's `--plan` flag (greedy planning is
        /// an offline decision and is not accepted over the wire).
        plan: String,
        /// Optional XPath to run against the **virtual** view: the view
        /// tree is pruned to what the path touches before planning, so a
        /// selective path ships a fraction of the full document. `None`
        /// materializes the whole view; encoded as the original
        /// `OP_QUERY` frame, so pre-XPath peers interoperate unchanged.
        xpath: Option<String>,
    },
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Cancel the query currently in flight on this connection (a no-op
    /// when idle).
    Cancel,
    /// Ask the server to begin a graceful shutdown: drain in-flight
    /// queries, answer new ones with [`Response::Busy`], then exit.
    Shutdown,
    /// Ask for a live telemetry snapshot; answered with
    /// [`Response::Stats`]. Never admission-controlled: STATS must work
    /// precisely when the server is saturated or draining.
    Stats,
}

/// Error category carried by an error frame — the wire rendition of
/// [`sr_engine::EngineError`] plus the protocol-level cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame itself did not parse.
    Malformed,
    /// Named view not present in the server's catalog.
    UnknownView,
    /// The plan spec string was not understood.
    BadPlan,
    /// Planning or execution failed server-side (parse/bind/execute).
    Engine,
    /// The query was cancelled (client request or disconnect).
    Cancelled,
    /// The query exceeded the server's per-query deadline.
    Timeout,
    /// An engine invariant broke (isolated panic, truncated stream).
    Internal,
    /// The query *text* shipped with the request was rejected: inline RXL
    /// that fails to parse (including the nesting-depth guard) or an
    /// XPath that fails to parse or compose with the view. Distinct from
    /// [`ErrorCode::Engine`] so clients can tell "my query is bad" from
    /// "the server failed to run a good query".
    BadQuery,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::UnknownView => 2,
            ErrorCode::BadPlan => 3,
            ErrorCode::Engine => 4,
            ErrorCode::Cancelled => 5,
            ErrorCode::Timeout => 6,
            ErrorCode::Internal => 7,
            ErrorCode::BadQuery => 8,
        }
    }

    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnknownView,
            3 => ErrorCode::BadPlan,
            4 => ErrorCode::Engine,
            5 => ErrorCode::Cancelled,
            6 => ErrorCode::Timeout,
            7 => ErrorCode::Internal,
            8 => ErrorCode::BadQuery,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::Malformed => "MALFORMED",
            ErrorCode::UnknownView => "UNKNOWN_VIEW",
            ErrorCode::BadPlan => "BAD_PLAN",
            ErrorCode::Engine => "ENGINE",
            ErrorCode::Cancelled => "CANCELLED",
            ErrorCode::Timeout => "TIMEOUT",
            ErrorCode::Internal => "INTERNAL",
            ErrorCode::BadQuery => "BAD_QUERY",
        };
        f.write_str(s)
    }
}

/// End-of-response summary shipped with [`Response::Done`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DoneStats {
    /// Tuples consumed across all component streams.
    pub tuples: u64,
    /// XML elements emitted (zero in tuple mode).
    pub elements: u64,
    /// Payload bytes shipped in chunk frames.
    pub bytes: u64,
    /// Component streams the plan decomposed into.
    pub streams: u64,
    /// Server-side wall time for the whole request, in microseconds.
    pub elapsed_us: u64,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// One run of result bytes. `channel` is [`DOC_CHANNEL`] for XML
    /// document chunks, or the component-stream index in tuple mode.
    Chunk {
        /// Which logical stream the bytes belong to.
        channel: u16,
        /// The payload run.
        data: Vec<u8>,
    },
    /// Successful end of response.
    Done(DoneStats),
    /// The request failed; any chunks already shipped are to be discarded.
    Error {
        /// Failure category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Admission rejected the request (queue full, quota, or the server is
    /// draining). Distinct from [`Response::Error`] so clients can
    /// back off and retry rather than report a failure.
    Busy {
        /// Why admission refused.
        message: String,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Acknowledges [`Request::Shutdown`]; the connection closes next.
    Goodbye,
    /// Answer to [`Request::Stats`]: a UTF-8 JSON telemetry snapshot,
    /// carried as raw bytes (not a length-prefixed string — the snapshot
    /// can exceed a u16 on a server with many clients and instruments).
    Stats {
        /// JSON bytes; see `docs/OBSERVABILITY.md` for the schema.
        data: Vec<u8>,
    },
}

// Opcode bytes. Requests are < 0x80, responses >= 0x80.
const OP_QUERY: u8 = 0x01;
const OP_PING: u8 = 0x02;
const OP_CANCEL: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;
const OP_STATS: u8 = 0x05;
const OP_QUERY_XPATH: u8 = 0x06;
const OP_CHUNK: u8 = 0x81;
const OP_DONE: u8 = 0x82;
const OP_ERROR: u8 = 0x83;
const OP_BUSY: u8 = 0x84;
const OP_PONG: u8 = 0x85;
const OP_GOODBYE: u8 = 0x86;
const OP_STATS_RESP: u8 = 0x87;

/// A cursor over one frame's payload with typed, bounds-checked readers.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    opcode: u8,
}

impl<'a> Cursor<'a> {
    fn bad(&self, reason: impl Into<String>) -> ProtoError {
        ProtoError::BadPayload {
            opcode: self.opcode,
            reason: reason.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() - self.pos < n {
            return Err(self.bad(format!(
                "needs {n} more byte(s), {} left",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| self.bad(format!("invalid utf-8: {e}")))
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.pos != self.buf.len() {
            return Err(self.bad(format!(
                "{} trailing byte(s) after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    // Strings longer than a u16 cannot be encoded; the only unbounded one
    // is RXL source, which the encoder truncates rather than corrupting
    // the frame. (Views that large are beyond anything the parser accepts.)
    let len = s.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_be_bytes());
    out.extend_from_slice(&s.as_bytes()[..len]);
}

impl Request {
    /// Encode into a complete frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let (opcode, payload) = match self {
            Request::Query {
                format,
                view,
                plan,
                xpath,
            } => {
                let mut p = Vec::new();
                p.push(match format {
                    Format::Xml => 0u8,
                    Format::Tuples => 1u8,
                });
                match view {
                    ViewRef::Named(name) => {
                        p.push(0u8);
                        put_string(&mut p, name);
                    }
                    ViewRef::Rxl(src) => {
                        p.push(1u8);
                        put_string(&mut p, src);
                    }
                }
                put_string(&mut p, plan);
                match xpath {
                    None => (OP_QUERY, p),
                    Some(path) => {
                        put_string(&mut p, path);
                        (OP_QUERY_XPATH, p)
                    }
                }
            }
            Request::Ping => (OP_PING, Vec::new()),
            Request::Cancel => (OP_CANCEL, Vec::new()),
            Request::Shutdown => (OP_SHUTDOWN, Vec::new()),
            Request::Stats => (OP_STATS, Vec::new()),
        };
        frame_bytes(opcode, &payload)
    }

    /// Decode from an opcode + payload (the frame header already consumed).
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Request, ProtoError> {
        let mut c = Cursor {
            buf: payload,
            pos: 0,
            opcode,
        };
        let req = match opcode {
            OP_QUERY | OP_QUERY_XPATH => {
                let format = match c.u8()? {
                    0 => Format::Xml,
                    1 => Format::Tuples,
                    v => return Err(c.bad(format!("unknown format {v}"))),
                };
                let view = match c.u8()? {
                    0 => ViewRef::Named(c.string()?),
                    1 => ViewRef::Rxl(c.string()?),
                    v => return Err(c.bad(format!("unknown view kind {v}"))),
                };
                let plan = c.string()?;
                let xpath = if opcode == OP_QUERY_XPATH {
                    Some(c.string()?)
                } else {
                    None
                };
                Request::Query {
                    format,
                    view,
                    plan,
                    xpath,
                }
            }
            OP_PING => Request::Ping,
            OP_CANCEL => Request::Cancel,
            OP_SHUTDOWN => Request::Shutdown,
            OP_STATS => Request::Stats,
            op => return Err(ProtoError::BadOpcode(op)),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encode into a complete frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let (opcode, payload) = match self {
            Response::Chunk { channel, data } => {
                let mut p = Vec::with_capacity(2 + data.len());
                p.extend_from_slice(&channel.to_be_bytes());
                p.extend_from_slice(data);
                (OP_CHUNK, p)
            }
            Response::Done(s) => {
                let mut p = Vec::with_capacity(40);
                for v in [s.tuples, s.elements, s.bytes, s.streams, s.elapsed_us] {
                    p.extend_from_slice(&v.to_be_bytes());
                }
                (OP_DONE, p)
            }
            Response::Error { code, message } => {
                let mut p = vec![code.to_u8()];
                put_string(&mut p, message);
                (OP_ERROR, p)
            }
            Response::Busy { message } => {
                let mut p = Vec::new();
                put_string(&mut p, message);
                (OP_BUSY, p)
            }
            Response::Pong => (OP_PONG, Vec::new()),
            Response::Goodbye => (OP_GOODBYE, Vec::new()),
            Response::Stats { data } => (OP_STATS_RESP, data.clone()),
        };
        frame_bytes(opcode, &payload)
    }

    /// Decode from an opcode + payload (the frame header already consumed).
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Response, ProtoError> {
        let mut c = Cursor {
            buf: payload,
            pos: 0,
            opcode,
        };
        let resp = match opcode {
            OP_CHUNK => {
                let channel = c.u16()?;
                let data = c.buf[c.pos..].to_vec();
                c.pos = c.buf.len();
                Response::Chunk { channel, data }
            }
            OP_DONE => Response::Done(DoneStats {
                tuples: c.u64()?,
                elements: c.u64()?,
                bytes: c.u64()?,
                streams: c.u64()?,
                elapsed_us: c.u64()?,
            }),
            OP_ERROR => {
                let raw = c.u8()?;
                let code = ErrorCode::from_u8(raw)
                    .ok_or_else(|| c.bad(format!("unknown error code {raw}")))?;
                Response::Error {
                    code,
                    message: c.string()?,
                }
            }
            OP_BUSY => Response::Busy {
                message: c.string()?,
            },
            OP_PONG => Response::Pong,
            OP_GOODBYE => Response::Goodbye,
            OP_STATS_RESP => {
                let data = c.buf[c.pos..].to_vec();
                c.pos = c.buf.len();
                Response::Stats { data }
            }
            op => return Err(ProtoError::BadOpcode(op)),
        };
        c.finish()?;
        Ok(resp)
    }
}

/// Assemble a complete frame from opcode + payload.
fn frame_bytes(opcode: u8, payload: &[u8]) -> Vec<u8> {
    let len = 1 + payload.len();
    debug_assert!(len <= MAX_FRAME_LEN);
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&(len as u32).to_be_bytes());
    out.push(opcode);
    out.extend_from_slice(payload);
    out
}

/// One raw frame off the wire: opcode + payload, header already validated.
#[derive(Debug)]
pub struct RawFrame {
    /// The opcode byte.
    pub opcode: u8,
    /// The payload (frame length minus the opcode byte).
    pub payload: Vec<u8>,
}

/// Read exactly `buf.len()` bytes. Distinguishes the clean-close case
/// (`Ok(false)` when EOF arrives before the *first* byte and
/// `eof_ok` is set) from a mid-frame truncation (typed error).
fn read_exact_or_truncated<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    eof_ok: bool,
) -> Result<bool, ProtoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && eof_ok {
                    return Ok(false);
                }
                return Err(ProtoError::Truncated {
                    missing: buf.len() - filled,
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(true)
}

/// Read one frame. Returns `Ok(None)` on a clean end of stream (EOF
/// exactly at a frame boundary); every other irregularity is a typed
/// [`ProtoError`]. The length field is validated **before** any payload
/// allocation, so a hostile length cannot balloon memory.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<RawFrame>, ProtoError> {
    let mut header = [0u8; 4];
    if !read_exact_or_truncated(r, &mut header, true)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(header) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(ProtoError::BadLength { len: len as u64 });
    }
    let mut opcode = [0u8; 1];
    read_exact_or_truncated(r, &mut opcode, false)?;
    let mut payload = vec![0u8; len - 1];
    read_exact_or_truncated(r, &mut payload, false)?;
    Ok(Some(RawFrame {
        opcode: opcode[0],
        payload,
    }))
}

/// Read one frame and decode it as a [`Request`].
pub fn read_request<R: Read>(r: &mut R) -> Result<Option<Request>, ProtoError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(f) => Request::decode(f.opcode, &f.payload).map(Some),
    }
}

/// Read one frame and decode it as a [`Response`].
pub fn read_response<R: Read>(r: &mut R) -> Result<Option<Response>, ProtoError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(f) => Response::decode(f.opcode, &f.payload).map(Some),
    }
}

/// Write one already-encoded frame.
pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> std::io::Result<()> {
    w.write_all(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Query {
                format: Format::Xml,
                view: ViewRef::Named("query1".into()),
                plan: "unified".into(),
                xpath: None,
            },
            Request::Query {
                format: Format::Tuples,
                view: ViewRef::Rxl("from Supplier $s construct <s/>".into()),
                plan: "edges:5".into(),
                xpath: None,
            },
            Request::Query {
                format: Format::Xml,
                view: ViewRef::Named("query1".into()),
                plan: "partitioned".into(),
                xpath: Some("/supplier[name = \"x\"]/part".into()),
            },
            Request::Ping,
            Request::Cancel,
            Request::Shutdown,
            Request::Stats,
        ];
        for req in reqs {
            let bytes = req.encode();
            let mut r = &bytes[..];
            let back = read_request(&mut r).unwrap().unwrap();
            assert_eq!(back, req);
            assert!(read_request(&mut r).unwrap().is_none(), "exactly one frame");
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            Response::Chunk {
                channel: DOC_CHANNEL,
                data: b"<supplier>".to_vec(),
            },
            Response::Chunk {
                channel: 3,
                data: vec![0, 1, 2, 255],
            },
            Response::Done(DoneStats {
                tuples: 10,
                elements: 20,
                bytes: 30,
                streams: 2,
                elapsed_us: 12345,
            }),
            Response::Error {
                code: ErrorCode::Timeout,
                message: "query timed out after 5ms".into(),
            },
            Response::Busy {
                message: "queue full".into(),
            },
            Response::Pong,
            Response::Goodbye,
            Response::Stats {
                data: br#"{"uptime_s":1.5}"#.to_vec(),
            },
        ];
        for resp in resps {
            let bytes = resp.encode();
            let mut r = &bytes[..];
            assert_eq!(read_response(&mut r).unwrap().unwrap(), resp);
        }
    }

    #[test]
    fn zero_and_oversize_lengths_rejected() {
        let mut zero = &[0u8, 0, 0, 0][..];
        assert!(matches!(
            read_frame(&mut zero),
            Err(ProtoError::BadLength { len: 0 })
        ));
        let huge = ((MAX_FRAME_LEN + 1) as u32).to_be_bytes();
        let mut r = &huge[..];
        assert!(matches!(
            read_frame(&mut r),
            Err(ProtoError::BadLength { .. })
        ));
    }

    #[test]
    fn truncation_mid_frame_is_typed() {
        let full = Request::Ping.encode();
        for cut in 1..full.len() {
            let mut r = &full[..cut];
            match read_frame(&mut r) {
                Err(ProtoError::Truncated { missing }) => assert!(missing > 0, "cut {cut}"),
                other => panic!("cut {cut}: expected truncation, got {other:?}"),
            }
        }
    }

    #[test]
    fn eof_at_boundary_is_clean() {
        let mut empty: &[u8] = &[];
        assert!(read_frame(&mut empty).unwrap().is_none());
    }

    #[test]
    fn garbage_opcode_rejected() {
        let frame = frame_bytes(0x7f, b"");
        let mut r = &frame[..];
        let raw = read_frame(&mut r).unwrap().unwrap();
        assert!(matches!(
            Request::decode(raw.opcode, &raw.payload),
            Err(ProtoError::BadOpcode(0x7f))
        ));
        assert!(matches!(
            Response::decode(0x40, b""),
            Err(ProtoError::BadOpcode(0x40))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        assert!(matches!(
            Request::decode(OP_PING, &[9]),
            Err(ProtoError::BadPayload { .. })
        ));
    }

    #[test]
    fn error_codes_roundtrip() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::UnknownView,
            ErrorCode::BadPlan,
            ErrorCode::Engine,
            ErrorCode::Cancelled,
            ErrorCode::Timeout,
            ErrorCode::Internal,
            ErrorCode::BadQuery,
        ] {
            assert_eq!(ErrorCode::from_u8(code.to_u8()), Some(code));
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(9), None);
    }

    #[test]
    fn plain_query_stays_on_the_original_opcode() {
        // Wire compatibility: a query without an XPath must encode exactly
        // as it did before the virtual-view extension.
        let req = Request::Query {
            format: Format::Xml,
            view: ViewRef::Named("query1".into()),
            plan: "unified".into(),
            xpath: None,
        };
        assert_eq!(req.encode()[4], OP_QUERY);
        let with_path = Request::Query {
            format: Format::Xml,
            view: ViewRef::Named("query1".into()),
            plan: "unified".into(),
            xpath: Some("//part".into()),
        };
        assert_eq!(with_path.encode()[4], OP_QUERY_XPATH);
    }
}
