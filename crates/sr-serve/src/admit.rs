//! Cross-query admission control for the serving front-end.
//!
//! The engine's `ExecGate` bounds how many *component queries* execute at
//! once; it knows nothing about clients. This layer sits above it and
//! bounds whole *requests*: at most `slots` queries run concurrently, at
//! most `per_client` of them on behalf of any one client, and at most
//! `queue_depth` requests wait. A request past the queue depth is refused
//! immediately with a BUSY frame rather than queued indefinitely — the
//! client learns to back off instead of timing out blind.
//!
//! Scheduling is FIFO with one twist for fairness: a waiter blocked only
//! by its *own* client's quota does not hold up later waiters from other
//! clients. One caller looping heavy `query2` submissions therefore keeps
//! at most `per_client` slots plus one queue position busy; interactive
//! callers overtake it instead of starving behind it.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use sr_obs::MetricsRegistry;

/// Admission knobs. All zeros are normalized to "at least one".
#[derive(Debug, Clone, Copy)]
pub struct AdmitConfig {
    /// Concurrent queries across all clients.
    pub slots: usize,
    /// Concurrent queries per client connection.
    pub per_client: usize,
    /// Waiters allowed beyond the running set; the next one is refused.
    pub queue_depth: usize,
}

impl Default for AdmitConfig {
    fn default() -> Self {
        let slots = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(1);
        AdmitConfig {
            slots,
            per_client: 1.max(slots / 2),
            queue_depth: slots * 4,
        }
    }
}

/// Why a request was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitRejection {
    /// The wait queue is at `queue_depth`.
    QueueFull {
        /// The configured depth that was hit.
        depth: usize,
    },
    /// The controller is shutting down and takes no new work.
    Draining,
}

impl std::fmt::Display for AdmitRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitRejection::QueueFull { depth } => {
                write!(f, "admission queue full (depth {depth})")
            }
            AdmitRejection::Draining => write!(f, "server is draining"),
        }
    }
}

#[derive(Debug)]
struct Waiter {
    seq: u64,
    client: u64,
}

#[derive(Debug, Default)]
struct State {
    running: usize,
    running_by_client: std::collections::HashMap<u64, usize>,
    queue: VecDeque<Waiter>,
    next_seq: u64,
    draining: bool,
}

/// The admission controller. Cheap to clone via `Arc`.
pub struct Admission {
    cfg: AdmitConfig,
    state: Mutex<State>,
    cv: Condvar,
    metrics: Arc<MetricsRegistry>,
}

/// RAII slot: dropping it releases the slot and wakes waiters.
pub struct AdmitPermit {
    admission: Arc<Admission>,
    client: u64,
}

impl Drop for AdmitPermit {
    fn drop(&mut self) {
        let mut st = self.admission.state.lock().expect("admission lock");
        st.running -= 1;
        if let Some(n) = st.running_by_client.get_mut(&self.client) {
            *n -= 1;
            if *n == 0 {
                st.running_by_client.remove(&self.client);
            }
        }
        drop(st);
        self.admission.cv.notify_all();
    }
}

impl Admission {
    /// Build a controller recording into the given metrics registry.
    pub fn new(cfg: AdmitConfig, metrics: Arc<MetricsRegistry>) -> Arc<Admission> {
        let cfg = AdmitConfig {
            slots: cfg.slots.max(1),
            per_client: cfg.per_client.max(1),
            queue_depth: cfg.queue_depth,
        };
        Arc::new(Admission {
            cfg,
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            metrics,
        })
    }

    /// The active configuration (after normalization).
    pub fn config(&self) -> AdmitConfig {
        self.cfg
    }

    /// Queries currently holding a slot.
    pub fn in_flight(&self) -> usize {
        self.state.lock().expect("admission lock").running
    }

    /// Requests currently parked in the wait queue.
    pub fn queue_len(&self) -> usize {
        self.state.lock().expect("admission lock").queue.len()
    }

    /// Whether [`Admission::drain`] has fired.
    pub fn is_draining(&self) -> bool {
        self.state.lock().expect("admission lock").draining
    }

    /// Per-client slot usage right now: `(client id, running queries)`,
    /// sorted by client id. Only clients holding at least one slot appear.
    pub fn running_by_client(&self) -> Vec<(u64, usize)> {
        let st = self.state.lock().expect("admission lock");
        let mut v: Vec<(u64, usize)> = st.running_by_client.iter().map(|(&c, &n)| (c, n)).collect();
        v.sort_unstable();
        v
    }

    /// Bump the total rejection counter plus its cause-labeled sibling, so
    /// a BUSY storm is diagnosable from the snapshot alone.
    fn reject(&self, cause: &str) {
        self.metrics.counter("serve.rejected").inc();
        self.metrics
            .counter(&format!("serve.rejected.{cause}"))
            .inc();
    }

    /// Stop admitting: queued waiters and new arrivals are refused with
    /// [`AdmitRejection::Draining`]; running queries keep their slots.
    pub fn drain(&self) {
        self.state.lock().expect("admission lock").draining = true;
        self.cv.notify_all();
    }

    /// Whether a waiter may start, given who else is waiting. Eligible
    /// means: a slot is free, the client is under quota, and no *earlier*
    /// waiter that is itself eligible-but-for-ordering is still queued.
    /// Earlier waiters blocked purely by their own client quota are
    /// skipped over — that is the fairness rule.
    fn may_start(&self, st: &State, seq: u64, client: u64) -> bool {
        if st.running >= self.cfg.slots {
            return false;
        }
        if st.running_by_client.get(&client).copied().unwrap_or(0) >= self.cfg.per_client {
            return false;
        }
        for w in &st.queue {
            if w.seq >= seq {
                break;
            }
            let their_running = st.running_by_client.get(&w.client).copied().unwrap_or(0);
            if their_running < self.cfg.per_client {
                // An earlier waiter could also run right now: FIFO wins.
                return false;
            }
        }
        true
    }

    /// Block until admitted or refused. `client` identifies the
    /// connection for quota purposes.
    pub fn admit(self: &Arc<Self>, client: u64) -> Result<AdmitPermit, AdmitRejection> {
        let started = Instant::now();
        let mut st = self.state.lock().expect("admission lock");
        if st.draining {
            self.reject("draining");
            return Err(AdmitRejection::Draining);
        }
        let seq = st.next_seq;
        st.next_seq += 1;

        // Fast path: nothing relevant ahead of us.
        if st.queue.is_empty() && self.may_start(&st, seq, client) {
            return Ok(self.grant(st, client, started));
        }
        if st.queue.len() >= self.cfg.queue_depth {
            // A client refused while it is itself sitting at its per-client
            // quota was really stopped by the quota, not by global load.
            let at_quota =
                st.running_by_client.get(&client).copied().unwrap_or(0) >= self.cfg.per_client;
            self.reject(if at_quota { "quota" } else { "queue_full" });
            return Err(AdmitRejection::QueueFull {
                depth: self.cfg.queue_depth,
            });
        }
        st.queue.push_back(Waiter { seq, client });
        loop {
            if st.draining {
                st.queue.retain(|w| w.seq != seq);
                self.reject("draining");
                return Err(AdmitRejection::Draining);
            }
            if self.may_start(&st, seq, client) {
                st.queue.retain(|w| w.seq != seq);
                return Ok(self.grant(st, client, started));
            }
            st = self.cv.wait(st).expect("admission lock");
        }
    }

    fn grant(
        self: &Arc<Self>,
        mut st: std::sync::MutexGuard<'_, State>,
        client: u64,
        started: Instant,
    ) -> AdmitPermit {
        st.running += 1;
        *st.running_by_client.entry(client).or_insert(0) += 1;
        drop(st);
        self.metrics.counter("serve.admitted").inc();
        let wait_ms = started.elapsed().as_millis().min(u64::MAX as u128) as u64;
        self.metrics
            .histogram("serve.queue_wait_ms")
            .record(wait_ms);
        self.metrics
            .windowed_histogram("serve.queue_wait_ms")
            .record(wait_ms);
        AdmitPermit {
            admission: Arc::clone(self),
            client,
        }
    }
}

impl std::fmt::Debug for Admission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Admission")
            .field("cfg", &self.cfg)
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn controller(slots: usize, per_client: usize, depth: usize) -> Arc<Admission> {
        Admission::new(
            AdmitConfig {
                slots,
                per_client,
                queue_depth: depth,
            },
            Arc::new(MetricsRegistry::new()),
        )
    }

    #[test]
    fn slots_bound_concurrency() {
        let a = controller(2, 2, 8);
        let p1 = a.admit(1).unwrap();
        let _p2 = a.admit(2).unwrap();
        assert_eq!(a.in_flight(), 2);

        let a2 = Arc::clone(&a);
        let entered = Arc::new(AtomicUsize::new(0));
        let e2 = Arc::clone(&entered);
        let h = std::thread::spawn(move || {
            let p = a2.admit(3).unwrap();
            e2.store(1, Ordering::SeqCst);
            drop(p);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(entered.load(Ordering::SeqCst), 0, "third query must wait");
        drop(p1);
        h.join().unwrap();
        assert_eq!(entered.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn queue_full_rejects_immediately() {
        let a = controller(1, 1, 0);
        let _p = a.admit(1).unwrap();
        match a.admit(2) {
            Err(AdmitRejection::QueueFull { depth: 0 }) => {}
            Err(other) => panic!("wrong rejection: {other:?}"),
            Ok(_) => panic!("admitted past the queue depth"),
        }
    }

    #[test]
    fn quota_blocked_client_does_not_starve_others() {
        // Client 1 holds its whole quota; its second request queues first,
        // but client 2 arriving later must overtake it.
        let a = controller(2, 1, 8);
        let p1 = a.admit(1).unwrap();

        let a2 = Arc::clone(&a);
        let heavy = std::thread::spawn(move || {
            // Blocked on per-client quota, not on slots.
            let _p = a2.admit(1).unwrap();
        });
        std::thread::sleep(Duration::from_millis(50));
        // Later arrival from a different client: a slot is free and the
        // earlier waiter is quota-blocked, so this must be admitted now.
        let p2 = a.admit(2).unwrap();
        assert_eq!(a.in_flight(), 2);
        drop(p2);
        drop(p1); // frees client 1's quota; heavy waiter proceeds
        heavy.join().unwrap();
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn drain_refuses_new_and_queued() {
        let a = controller(1, 1, 8);
        let p = a.admit(1).unwrap();
        let a2 = Arc::clone(&a);
        let waiter = std::thread::spawn(move || a2.admit(2).map(|_| ()));
        std::thread::sleep(Duration::from_millis(50));
        a.drain();
        assert_eq!(waiter.join().unwrap(), Err(AdmitRejection::Draining));
        assert!(matches!(a.admit(3), Err(AdmitRejection::Draining)));
        drop(p);
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn permit_drop_releases_quota() {
        let a = controller(4, 1, 8);
        for _ in 0..3 {
            let p = a.admit(7).unwrap();
            drop(p);
        }
        assert_eq!(a.in_flight(), 0);
    }
}
