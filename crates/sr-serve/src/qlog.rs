//! The structured query log: one JSONL record per request.
//!
//! Records are handed to a dedicated writer thread over a **bounded,
//! non-blocking** channel: a handler thread calls [`QueryLog::emit`] and
//! moves on immediately. If the writer falls behind and the channel fills,
//! the record is *dropped* and counted (`dropped` in the STATS `qlog`
//! block) — logging can never stall a query, which is the whole point of
//! putting it on the request path.
//!
//! Slow requests (`--slow-ms`) get the expensive extras attached to their
//! record *before* emission — the per-node EXPLAIN ANALYZE profile and the
//! path of a Chrome trace file written tail-sampled by the handler — so the
//! writer thread itself stays trivial: render line, write, flush.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;

use sr_obs::Json;

use crate::frame::{ErrorCode, Format};
use crate::stats::QlogStat;

/// Records the channel may hold before new ones are dropped. Sized for a
/// burst of a few thousand sub-millisecond requests outrunning one fsync.
const QLOG_CHANNEL_DEPTH: usize = 4096;

/// Everything one request contributes to the log. Fields mirror the
/// `docs/OBSERVABILITY.md` "Query log" schema table.
#[derive(Debug, Clone)]
pub struct QlogRecord {
    /// Server-wide request sequence number.
    pub seq: u64,
    /// Connection (client) id.
    pub client: u64,
    /// The view reference: a catalog name, or `rxl:<bytes>` for inline
    /// source (the source itself is not logged).
    pub view: String,
    /// The plan spec string as submitted.
    pub plan: String,
    /// The XPath run against the virtual view, empty for a full
    /// materialization.
    pub xpath: String,
    /// `xml` or `tuples`.
    pub format: Format,
    /// Engine execution mode (`tuple` / `vectorized`).
    pub exec_mode: String,
    /// Engine shard fan-out for this server.
    pub shards: u64,
    /// Component streams the plan decomposed into (0 when planning failed).
    pub streams: u64,
    /// Whether every component plan came out of the prepared-plan cache.
    pub cache_hit: bool,
    /// Admission queue wait.
    pub queue_ms: f64,
    /// View resolution + SQL generation.
    pub plan_ms: f64,
    /// Execution + tagging (total minus the other phases).
    pub exec_ms: f64,
    /// Time spent encoding and writing response frames (includes client
    /// backpressure).
    pub encode_ms: f64,
    /// End-to-end server-side time.
    pub total_ms: f64,
    /// Tuples shipped.
    pub rows: u64,
    /// Chunk payload bytes shipped.
    pub bytes: u64,
    /// `"ok"`, a wire error code (`TIMEOUT`, …), `"busy"`, or `"gone"`.
    pub outcome: String,
    /// Error detail, empty on success.
    pub error: String,
    /// Whether this request crossed the `--slow-ms` threshold.
    pub slow: bool,
    /// Per-component EXPLAIN ANALYZE profiles (slow requests only).
    pub profile: Option<Json>,
    /// Chrome trace file path (slow requests only).
    pub trace_file: Option<String>,
}

impl QlogRecord {
    /// Outcome string for a typed wire error.
    pub fn outcome_for(code: ErrorCode) -> String {
        code.to_string()
    }

    /// Render as one JSON object (one line of the log).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("seq", Json::UInt(self.seq)),
            ("client", Json::UInt(self.client)),
            ("view", Json::Str(self.view.clone())),
            ("plan", Json::Str(self.plan.clone())),
            ("xpath", Json::Str(self.xpath.clone())),
            (
                "format",
                Json::Str(
                    match self.format {
                        Format::Xml => "xml",
                        Format::Tuples => "tuples",
                    }
                    .into(),
                ),
            ),
            ("exec_mode", Json::Str(self.exec_mode.clone())),
            ("shards", Json::UInt(self.shards)),
            ("streams", Json::UInt(self.streams)),
            ("cache_hit", Json::Bool(self.cache_hit)),
            ("queue_ms", Json::Float(self.queue_ms)),
            ("plan_ms", Json::Float(self.plan_ms)),
            ("exec_ms", Json::Float(self.exec_ms)),
            ("encode_ms", Json::Float(self.encode_ms)),
            ("total_ms", Json::Float(self.total_ms)),
            ("rows", Json::UInt(self.rows)),
            ("bytes", Json::UInt(self.bytes)),
            ("outcome", Json::Str(self.outcome.clone())),
            ("error", Json::Str(self.error.clone())),
            ("slow", Json::Bool(self.slow)),
        ];
        if let Some(p) = &self.profile {
            fields.push(("profile", p.clone()));
        }
        if let Some(t) = &self.trace_file {
            fields.push(("trace_file", Json::Str(t.clone())));
        }
        Json::obj(fields)
    }
}

/// The bounded, non-blocking JSONL writer. Shared across handler threads
/// via `Arc`; dropping the last handle flushes and joins the writer.
pub struct QueryLog {
    tx: Option<SyncSender<String>>,
    written: Arc<AtomicU64>,
    dropped: AtomicU64,
    slow: AtomicU64,
    path: PathBuf,
    writer: Option<std::thread::JoinHandle<()>>,
}

impl QueryLog {
    /// Open (truncate) `path` and start the writer thread.
    pub fn open(path: &Path) -> std::io::Result<QueryLog> {
        let file = std::fs::File::create(path)?;
        let (tx, rx) = sync_channel::<String>(QLOG_CHANNEL_DEPTH);
        let written = Arc::new(AtomicU64::new(0));
        let written2 = Arc::clone(&written);
        let writer = std::thread::Builder::new()
            .name("serve-qlog".into())
            .spawn(move || {
                let mut out = std::io::BufWriter::new(file);
                // Drains until every sender is gone, then flushes and exits:
                // the drop of the last QueryLog handle is the log's fsync.
                while let Ok(line) = rx.recv() {
                    if out.write_all(line.as_bytes()).is_ok() && out.write_all(b"\n").is_ok() {
                        let _ = out.flush();
                        written2.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let _ = out.flush();
            })?;
        Ok(QueryLog {
            tx: Some(tx),
            written,
            dropped: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            path: path.to_path_buf(),
            writer: Some(writer),
        })
    }

    /// Where the log is being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Queue one record; never blocks. A full channel drops the record and
    /// bumps the drop counter instead of stalling the caller.
    pub fn emit(&self, record: &QlogRecord) {
        if record.slow {
            self.slow.fetch_add(1, Ordering::Relaxed);
        }
        let line = record.to_json().render();
        if let Some(tx) = &self.tx {
            match tx.try_send(line) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Health counters for the STATS snapshot.
    pub fn stat(&self) -> QlogStat {
        QlogStat {
            enabled: true,
            written: self.written.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            slow: self.slow.load(Ordering::Relaxed),
        }
    }
}

impl Drop for QueryLog {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64, slow: bool) -> QlogRecord {
        QlogRecord {
            seq,
            client: 1,
            view: "query1".into(),
            plan: "unified".into(),
            xpath: String::new(),
            format: Format::Xml,
            exec_mode: "tuple".into(),
            shards: 1,
            streams: 2,
            cache_hit: seq > 0,
            queue_ms: 0.1,
            plan_ms: 0.4,
            exec_ms: 3.0,
            encode_ms: 0.2,
            total_ms: 3.7,
            rows: 100,
            bytes: 4096,
            outcome: "ok".into(),
            error: String::new(),
            slow,
            profile: if slow {
                Some(Json::Arr(vec![Json::obj(vec![(
                    "sql",
                    Json::Str("SELECT 1".into()),
                )])]))
            } else {
                None
            },
            trace_file: slow.then(|| "/tmp/trace.json".into()),
        }
    }

    #[test]
    fn records_round_trip_as_jsonl() {
        let dir = std::env::temp_dir().join(format!("sr-qlog-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.jsonl");
        {
            let log = QueryLog::open(&path).unwrap();
            log.emit(&sample(0, false));
            log.emit(&sample(1, true));
            // Drop flushes and joins the writer.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).expect("line 0 parses");
        assert_eq!(first.get("outcome").unwrap().as_str(), Some("ok"));
        assert_eq!(first.get("slow"), Some(&Json::Bool(false)));
        assert!(first.get("profile").is_none());
        let second = Json::parse(lines[1]).expect("line 1 parses");
        assert_eq!(second.get("slow"), Some(&Json::Bool(true)));
        assert!(second.get("profile").is_some());
        assert_eq!(
            second.get("trace_file").unwrap().as_str(),
            Some("/tmp/trace.json")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn emit_never_blocks_and_counts_drops() {
        let dir = std::env::temp_dir().join(format!("sr-qlog-drop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.jsonl");
        let log = QueryLog::open(&path).unwrap();
        // Far more records than the channel holds; emit must return from
        // every call without blocking, dropping the overflow.
        let total = QLOG_CHANNEL_DEPTH as u64 * 3;
        for i in 0..total {
            log.emit(&sample(i, false));
        }
        // No more emits: the drop counter is final. Everything else was
        // accepted by the channel and must reach the file by join time.
        let dropped = log.stat().dropped;
        drop(log);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count() as u64 + dropped, total);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
