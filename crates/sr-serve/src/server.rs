//! The TCP front-end: accept loop, per-connection threads, cancellation
//! wiring, and graceful shutdown.
//!
//! Each connection gets **two** threads: a reader that does nothing but
//! pull frames off the socket, and a handler that executes requests and
//! writes responses. The split is what makes cancellation work — while the
//! handler is deep inside a query, the reader still sees a CANCEL frame or
//! the socket closing and aborts the in-flight producers through the
//! connection's [`CancelRegistry`] immediately. The engine's workers
//! observe the token cooperatively, surface `EngineError::Cancelled`, and
//! release their `ExecGate` permits on the way out.
//!
//! The reader is also the connection's watchdog: a peer that sends part of
//! a frame and then stalls is cut off after [`ServeConfig::read_timeout`]
//! with a typed error frame instead of pinning the handler thread forever.
//! A peer idling *between* frames costs nothing and is allowed to idle.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sr_engine::Server as Engine;
use sr_obs::{Json, MetricsRegistry, Tracer};
use sr_plan::{RecostConfig, Recoster};

use crate::admit::{Admission, AdmitConfig};
use crate::frame::{ErrorCode, Format, ProtoError, Request, Response, ViewRef, MAX_FRAME_LEN};
use crate::pipeline::{
    resolve_plan, resolve_view, resolve_xpath, run_query, CancelRegistry, PipelineError,
    RecostContext, RunStats, ViewCatalog, XPathResolution,
};
use crate::qlog::{QlogRecord, QueryLog};
use crate::stats::{self, ClientStat, StatsSources};

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Admission-control limits.
    pub admit: AdmitConfig,
    /// Simultaneous connections; the next one is greeted with BUSY and
    /// closed.
    pub max_connections: usize,
    /// How long a connection may sit mid-frame without delivering the rest
    /// before it is cut off.
    pub read_timeout: Duration,
    /// Write one JSONL record per request to this file (see
    /// `docs/OBSERVABILITY.md` for the schema). `None` disables logging.
    pub query_log: Option<PathBuf>,
    /// Requests taking at least this many milliseconds get an EXPLAIN
    /// ANALYZE per-node profile and a Chrome trace file attached to their
    /// query-log record. Requires `query_log`. `None` disables capture.
    pub slow_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            admit: AdmitConfig::default(),
            max_connections: 64,
            read_timeout: Duration::from_secs(10),
            query_log: None,
            slow_ms: None,
        }
    }
}

/// Polling granularity for reader timeouts and handler drain checks.
const TICK: Duration = Duration::from_millis(25);

/// What the reader thread observed on the socket.
enum ConnEvent {
    /// A well-formed request frame.
    Request(Request),
    /// The frame stream is malformed; connection must close.
    Proto(ProtoError),
    /// Partial frame, then silence past the read timeout.
    ReadTimeout,
    /// Peer closed (cleanly or not); connection is over.
    Gone,
}

/// Connection registry entry backing the STATS `clients` table.
struct ClientEntry {
    addr: String,
    connected: Instant,
    queries: u64,
}

struct Shared {
    engine: Arc<Engine>,
    catalog: ViewCatalog,
    admission: Arc<Admission>,
    metrics: Arc<MetricsRegistry>,
    draining: AtomicBool,
    active: AtomicUsize,
    next_client: AtomicU64,
    read_timeout: Duration,
    start: Instant,
    max_connections: usize,
    clients: Mutex<BTreeMap<u64, ClientEntry>>,
    request_seq: AtomicU64,
    qlog: Option<QueryLog>,
    slow_ms: Option<u64>,
    /// Learned re-costing state for `greedy` plan requests: per-view plan
    /// cache plus the shared actual-cardinality store the cost oracle
    /// blends over static stats.
    recoster: Recoster,
}

impl Shared {
    /// Build the live STATS snapshot.
    fn stats_json(&self) -> Json {
        let running: std::collections::HashMap<u64, usize> =
            self.admission.running_by_client().into_iter().collect();
        let clients: Vec<ClientStat> = self
            .clients
            .lock()
            .expect("client registry lock")
            .iter()
            .map(|(&id, e)| ClientStat {
                id,
                addr: e.addr.clone(),
                queries: e.queries,
                running: running.get(&id).copied().unwrap_or(0),
                connected_s: e.connected.elapsed().as_secs_f64(),
            })
            .collect();
        stats::build(&StatsSources {
            uptime: self.start.elapsed(),
            draining: self.draining.load(Ordering::SeqCst),
            active_conns: self.active.load(Ordering::SeqCst),
            max_conns: self.max_connections,
            exec_mode: self.engine.exec_mode().to_string(),
            shards: self.engine.shards(),
            admission: &self.admission,
            metrics: &self.metrics,
            clients,
            qlog: self.qlog.as_ref().map(QueryLog::stat).unwrap_or_default(),
            fragment_cache: self.engine.fragment_cache_info(),
        })
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServeHandle::shutdown`].
pub struct ServeHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl ServeHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The admission controller (exposed for tests and metrics).
    pub fn admission(&self) -> &Arc<Admission> {
        &self.shared.admission
    }

    /// The same live STATS snapshot a [`Request::Stats`] frame gets,
    /// built in-process (used by tests and the final shutdown dump).
    pub fn stats_json(&self) -> Json {
        self.shared.stats_json()
    }

    /// Begin a graceful shutdown without waiting: stop accepting, refuse
    /// new queries with BUSY, let in-flight queries finish.
    pub fn begin_shutdown(&self) {
        if self.shared.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.admission.drain();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// Graceful shutdown: drain in-flight queries, close every
    /// connection, join all threads.
    pub fn shutdown(self) {
        self.begin_shutdown();
        self.wait();
    }

    /// Block until the server stops on its own — i.e. until some client
    /// sends a SHUTDOWN frame (or [`ServeHandle::begin_shutdown`] was
    /// called from another thread) and the drain completes.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        loop {
            let handle = self.conns.lock().expect("conn registry lock").pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

/// Bind and start serving. Returns once the listener is accepting.
pub fn serve(
    engine: Arc<Engine>,
    catalog: ViewCatalog,
    cfg: ServeConfig,
) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let metrics = engine.metrics().clone();
    let qlog = match &cfg.query_log {
        Some(path) => Some(QueryLog::open(path)?),
        None => None,
    };
    let shared = Arc::new(Shared {
        admission: Admission::new(cfg.admit, Arc::clone(&metrics)),
        engine,
        catalog,
        metrics,
        draining: AtomicBool::new(false),
        active: AtomicUsize::new(0),
        next_client: AtomicU64::new(1),
        read_timeout: cfg.read_timeout,
        start: Instant::now(),
        max_connections: cfg.max_connections.max(1),
        clients: Mutex::new(BTreeMap::new()),
        request_seq: AtomicU64::new(0),
        qlog,
        slow_ms: cfg.slow_ms,
        recoster: Recoster::new(RecostConfig::default()),
    });
    let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept = {
        let shared = Arc::clone(&shared);
        let conns = Arc::clone(&conns);
        let max_connections = cfg.max_connections.max(1);
        std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(listener, shared, conns, max_connections))
            .expect("spawn accept thread")
    };

    Ok(ServeHandle {
        shared,
        addr,
        accept: Some(accept),
        conns,
    })
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    max_connections: usize,
) {
    loop {
        let sock = match listener.accept() {
            Ok((sock, _)) => sock,
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            // The wake-up connection from begin_shutdown, or a late
            // arrival: either way, greet-and-close.
            let mut sock = sock;
            let _ = sock.write_all(
                &Response::Busy {
                    message: "server is draining".into(),
                }
                .encode(),
            );
            return;
        }
        if shared.active.load(Ordering::SeqCst) >= max_connections {
            shared.metrics.counter("serve.rejected").inc();
            shared.metrics.counter("serve.rejected.max_conns").inc();
            let mut sock = sock;
            let _ = sock.write_all(
                &Response::Busy {
                    message: format!("connection limit {max_connections} reached"),
                }
                .encode(),
            );
            let _ = sock.shutdown(Shutdown::Both);
            continue;
        }
        // Request/response traffic is latency-bound small frames; without
        // this the final frame of a response can sit in the kernel behind
        // Nagle waiting on the peer's delayed ACK (~40 ms per exchange).
        let _ = sock.set_nodelay(true);
        shared.active.fetch_add(1, Ordering::SeqCst);
        shared.metrics.counter("serve.connections").inc();
        let client_id = shared.next_client.fetch_add(1, Ordering::SeqCst);
        shared.clients.lock().expect("client registry lock").insert(
            client_id,
            ClientEntry {
                addr: sock
                    .peer_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "?".into()),
                connected: Instant::now(),
                queries: 0,
            },
        );
        let shared2 = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("serve-conn-{client_id}"))
            .spawn(move || {
                handle_connection(sock, shared2, client_id);
            })
            .expect("spawn connection thread");
        conns.lock().expect("conn registry lock").push(handle);
    }
}

/// Reader thread: frame the byte stream, forward parsed requests, watch
/// for disconnects and mid-frame stalls. Owns the connection's cancel
/// authority for everything asynchronous.
fn reader_loop(
    mut sock: TcpStream,
    tx: Sender<ConnEvent>,
    cancels: Arc<CancelRegistry>,
    read_timeout: Duration,
) {
    use std::io::Read;
    let _ = sock.set_read_timeout(Some(TICK));
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 16 * 1024];
    let mut last_progress = Instant::now();
    loop {
        match sock.read(&mut tmp) {
            Ok(0) => {
                cancels.cancel_all();
                let _ = tx.send(ConnEvent::Gone);
                return;
            }
            Ok(n) => {
                last_progress = Instant::now();
                buf.extend_from_slice(&tmp[..n]);
                loop {
                    if buf.len() < 4 {
                        break;
                    }
                    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
                    if len == 0 || len > MAX_FRAME_LEN {
                        cancels.cancel_all();
                        let _ =
                            tx.send(ConnEvent::Proto(ProtoError::BadLength { len: len as u64 }));
                        return;
                    }
                    if buf.len() < 4 + len {
                        break;
                    }
                    let opcode = buf[4];
                    let payload = &buf[5..4 + len];
                    match Request::decode(opcode, payload) {
                        Ok(req) => {
                            // CANCEL acts here, not in the handler: the
                            // handler may be mid-query and unable to look.
                            if matches!(req, Request::Cancel) {
                                cancels.cancel_all();
                            }
                            if tx.send(ConnEvent::Request(req)).is_err() {
                                return;
                            }
                        }
                        Err(e) => {
                            cancels.cancel_all();
                            let _ = tx.send(ConnEvent::Proto(e));
                            return;
                        }
                    }
                    buf.drain(..4 + len);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // No bytes this tick. Mid-frame silence is bounded by the
                // read timeout; idling at a frame boundary is free.
                if !buf.is_empty() && last_progress.elapsed() >= read_timeout {
                    cancels.cancel_all();
                    let _ = tx.send(ConnEvent::ReadTimeout);
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                cancels.cancel_all();
                let _ = tx.send(ConnEvent::Gone);
                return;
            }
        }
    }
}

/// Write a frame, treating failure as "client gone".
fn send(sock: &mut TcpStream, resp: &Response) -> bool {
    sock.write_all(&resp.encode()).is_ok()
}

fn handle_connection(sock: TcpStream, shared: Arc<Shared>, client_id: u64) {
    let cancels = Arc::new(CancelRegistry::new());
    let (tx, rx) = std::sync::mpsc::channel();
    let reader = {
        let cancels = Arc::clone(&cancels);
        let read_timeout = shared.read_timeout;
        match sock.try_clone() {
            Ok(read_half) => std::thread::Builder::new()
                .name(format!("serve-read-{client_id}"))
                .spawn(move || reader_loop(read_half, tx, cancels, read_timeout))
                .ok(),
            Err(_) => None,
        }
    };
    if reader.is_some() {
        let mut sock = sock;
        handler_loop(&mut sock, &rx, &shared, &cancels, client_id);
        // Closing both halves kicks the reader out of its read loop.
        let _ = sock.shutdown(Shutdown::Both);
    }
    cancels.cancel_all();
    if let Some(r) = reader {
        let _ = r.join();
    }
    shared
        .clients
        .lock()
        .expect("client registry lock")
        .remove(&client_id);
    shared.active.fetch_sub(1, Ordering::SeqCst);
}

fn handler_loop(
    sock: &mut TcpStream,
    rx: &Receiver<ConnEvent>,
    shared: &Arc<Shared>,
    cancels: &Arc<CancelRegistry>,
    client_id: u64,
) {
    loop {
        match rx.recv_timeout(TICK) {
            Ok(ConnEvent::Request(Request::Ping)) => {
                if !send(sock, &Response::Pong) {
                    return;
                }
            }
            Ok(ConnEvent::Request(Request::Cancel)) => {
                // The reader already fired the tokens; by the time the
                // event reaches us any affected query has unwound, so arm
                // the registry for the next one.
                cancels.reset();
            }
            Ok(ConnEvent::Request(Request::Shutdown)) => {
                shared.draining.store(true, Ordering::SeqCst);
                shared.admission.drain();
                // Unblock the accept loop the same way begin_shutdown does.
                if let Ok(addr) = sock.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                let _ = send(sock, &Response::Goodbye);
                return;
            }
            Ok(ConnEvent::Request(Request::Query {
                format,
                view,
                plan,
                xpath,
            })) => {
                if !handle_query(sock, shared, cancels, client_id, format, view, plan, xpath) {
                    return;
                }
            }
            Ok(ConnEvent::Request(Request::Stats)) => {
                let data = shared.stats_json().render().into_bytes();
                if !send(sock, &Response::Stats { data }) {
                    return;
                }
            }
            Ok(ConnEvent::Proto(e)) => {
                shared.metrics.counter("serve.protocol_errors").inc();
                let _ = send(
                    sock,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                );
                return;
            }
            Ok(ConnEvent::ReadTimeout) => {
                shared.metrics.counter("serve.read_timeouts").inc();
                let _ = send(
                    sock,
                    &Response::Error {
                        code: ErrorCode::Timeout,
                        message: format!(
                            "connection read timeout: partial frame stalled > {:?}",
                            shared.read_timeout
                        ),
                    },
                );
                return;
            }
            Ok(ConnEvent::Gone) => return,
            Err(RecvTimeoutError::Timeout) => {
                if shared.draining.load(Ordering::SeqCst) {
                    // Drained and idle: say goodbye and close.
                    let _ = send(sock, &Response::Goodbye);
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn ms_since(started: Instant) -> f64 {
    started.elapsed().as_secs_f64() * 1e3
}

/// Serve one QUERY request end to end: admission, execution, response
/// frames, latency/throughput recording (cumulative + rolling windows),
/// the query-log record, and — for requests crossing `--slow-ms` — the
/// EXPLAIN ANALYZE profile and Chrome trace capture. Returns `false` when
/// the connection is over.
#[allow(clippy::too_many_arguments)]
fn handle_query(
    sock: &mut TcpStream,
    shared: &Arc<Shared>,
    cancels: &Arc<CancelRegistry>,
    client_id: u64,
    format: Format,
    view: ViewRef,
    plan: String,
    xpath: Option<String>,
) -> bool {
    shared.metrics.counter("serve.requests").inc();
    let seq = shared.request_seq.fetch_add(1, Ordering::SeqCst);
    if let Some(e) = shared
        .clients
        .lock()
        .expect("client registry lock")
        .get_mut(&client_id)
    {
        e.queries += 1;
    }
    let mut record = QlogRecord {
        seq,
        client: client_id,
        view: match &view {
            ViewRef::Named(n) => n.clone(),
            // Inline source is not logged, only its size.
            ViewRef::Rxl(src) => format!("rxl:{}", src.len()),
        },
        plan: plan.clone(),
        xpath: xpath.clone().unwrap_or_default(),
        format,
        exec_mode: shared.engine.exec_mode().to_string(),
        shards: shared.engine.shards() as u64,
        streams: 0,
        cache_hit: false,
        queue_ms: 0.0,
        plan_ms: 0.0,
        exec_ms: 0.0,
        encode_ms: 0.0,
        total_ms: 0.0,
        rows: 0,
        bytes: 0,
        outcome: "ok".into(),
        error: String::new(),
        slow: false,
        profile: None,
        trace_file: None,
    };

    let admit_started = Instant::now();
    let permit = match shared.admission.admit(client_id) {
        Ok(p) => p,
        Err(rej) => {
            record.queue_ms = ms_since(admit_started);
            record.total_ms = record.queue_ms;
            record.outcome = "busy".into();
            record.error = rej.to_string();
            if let Some(q) = &shared.qlog {
                q.emit(&record);
            }
            return send(
                sock,
                &Response::Busy {
                    message: rej.to_string(),
                },
            );
        }
    };
    record.queue_ms = ms_since(admit_started);

    // When slow capture is armed, every request runs under a fresh tracer;
    // only the slow ones pay for a trace *file* (tail sampling).
    let tracer = shared.slow_ms.map(|_| {
        let t = Arc::new(Tracer::new());
        t.name_current_thread(format!("serve-conn-{client_id}"));
        t
    });
    // The re-coster's feedback key: named views key by name, inline RXL by
    // its full source (a length-based key would alias distinct views).
    let view_key = match &view {
        ViewRef::Named(n) => n.clone(),
        ViewRef::Rxl(src) => format!("rxl:{src}"),
    };
    // An XPath query plans (and feeds back) against the *pruned* tree — a
    // different shape with its own edge set, so it must not share a greedy
    // plan-cache entry with the full view.
    let view_key = match &xpath {
        Some(p) => format!("{view_key}#xpath:{p}"),
        None => view_key,
    };
    let exec_started = Instant::now();
    let outcome = resolve_view(&shared.catalog, shared.engine.database(), &view).and_then(|tree| {
        let tree = match resolve_xpath(tree, xpath.as_deref())? {
            XPathResolution::Full(tree) => tree,
            XPathResolution::Pruned { tree, pruned_nodes } => {
                shared.metrics.counter("query.view_hits").inc();
                shared
                    .metrics
                    .counter("query.pruned_nodes")
                    .add(pruned_nodes as u64);
                tree
            }
            XPathResolution::Empty { pruned_nodes } => {
                // Statically empty document: nothing to plan or run.
                shared.metrics.counter("query.view_hits").inc();
                shared
                    .metrics
                    .counter("query.pruned_nodes")
                    .add(pruned_nodes as u64);
                return Ok(RunStats {
                    done: crate::frame::DoneStats {
                        elapsed_us: exec_started.elapsed().as_micros().min(u64::MAX as u128) as u64,
                        ..Default::default()
                    },
                    plan_ms: ms_since(exec_started),
                    encode_ms: 0.0,
                    cache_hit: false,
                    sqls: Vec::new(),
                    per_stream_rows: Vec::new(),
                });
            }
        };
        let recost = RecostContext {
            recoster: &shared.recoster,
            view_key: &view_key,
            engine: &shared.engine,
        };
        let spec = resolve_plan(&tree, &plan, Some(&recost))?;
        run_query(
            &shared.engine,
            &tree,
            format,
            spec,
            cancels,
            sock,
            tracer.as_ref(),
        )
    });
    drop(permit);

    let total_ms = ms_since(exec_started);
    record.total_ms = total_ms;
    let m = &shared.metrics;
    let us = (total_ms * 1e3) as u64;
    m.histogram("serve.request_us").record(us);
    m.windowed_histogram("serve.request_us").record(us);
    let slow = shared.slow_ms.is_some_and(|t| total_ms >= t as f64);
    record.slow = slow;
    if slow {
        m.counter("serve.slow").inc();
    }

    let (alive, sqls) = match outcome {
        Ok(run) => {
            record.streams = run.done.streams;
            record.cache_hit = run.cache_hit;
            record.plan_ms = run.plan_ms;
            record.encode_ms = run.encode_ms;
            record.exec_ms = (total_ms - run.plan_ms - run.encode_ms).max(0.0);
            record.rows = run.done.tuples;
            record.bytes = run.done.bytes;
            m.windowed_counter("serve.rows").add(run.done.tuples);
            m.windowed_counter("serve.bytes").add(run.done.bytes);
            // Close the cost-feedback loop: report each component stream's
            // actual cardinality so a later `greedy` request can re-plan.
            for (sql, &rows) in run.sqls.iter().zip(&run.per_stream_rows) {
                shared.recoster.observe(&view_key, sql, rows);
            }
            (send(sock, &Response::Done(run.done)), run.sqls)
        }
        Err(PipelineError::Typed { code, message }) => {
            if code == ErrorCode::Cancelled {
                m.counter("serve.cancelled").inc();
            }
            record.outcome = code.to_string();
            record.error = message.clone();
            (send(sock, &Response::Error { code, message }), Vec::new())
        }
        Err(PipelineError::ClientGone(e)) => {
            m.counter("serve.cancelled").inc();
            record.outcome = "gone".into();
            record.error = e.to_string();
            (false, Vec::new())
        }
    };

    // Slow capture happens after the response is on the wire, so the extra
    // work (trace render + EXPLAIN ANALYZE re-run) never delays the client.
    if slow {
        if let (Some(qlog), Some(tracer)) = (&shared.qlog, &tracer) {
            let trace_path = qlog.path().with_extension(format!("trace-{seq}.json"));
            if std::fs::write(&trace_path, tracer.to_chrome_json().render()).is_ok() {
                record.trace_file = Some(trace_path.to_string_lossy().into_owned());
            }
            let profiles: Vec<Json> = sqls
                .iter()
                .map(|sql| match shared.engine.explain_analyze(sql) {
                    Ok(a) => Json::obj(vec![
                        ("sql", Json::Str(sql.clone())),
                        ("analysis", a.to_json()),
                    ]),
                    Err(e) => Json::obj(vec![
                        ("sql", Json::Str(sql.clone())),
                        ("error", Json::Str(e.to_string())),
                    ]),
                })
                .collect();
            record.profile = Some(Json::Arr(profiles));
        }
    }
    if let Some(q) = &shared.qlog {
        q.emit(&record);
    }
    if alive {
        cancels.reset();
    }
    alive
}
