//! `sr-serve` — the concurrent multi-client front-end that turns the
//! silkroute pipeline into a long-running middle-ware service.
//!
//! The paper frames SilkRoute as a server fielding many client requests;
//! this crate supplies that serving layer over the in-process engine:
//!
//! * a **frame protocol** ([`frame`]): length-prefixed request/response
//!   frames — submit a named view or inline RXL, stream back the tagged
//!   XML document or the raw wire-encoded tuple streams;
//! * **admission control** ([`admit`]): whole-request slots, per-client
//!   quotas, a bounded wait queue, and quota-aware FIFO fairness, layered
//!   above the engine's per-query `ExecGate`;
//! * the **server** ([`server`]): thread-per-connection with a dedicated
//!   reader per socket, so client disconnects and CANCEL frames abort
//!   in-flight producers through their `CancelToken`s immediately, plus
//!   graceful drain-then-stop shutdown and a mid-frame stall watchdog;
//! * a blocking **client** ([`client`]) used by the CLI, the load
//!   generator, and the protocol conformance tests.
//!
//! See `docs/SERVING.md` for the wire format and operational knobs.

#![warn(missing_docs)]

pub mod admit;
pub mod client;
pub mod frame;
pub mod pipeline;
pub mod qlog;
pub mod server;
pub mod stats;

pub use admit::{Admission, AdmitConfig, AdmitPermit, AdmitRejection};
pub use client::{Client, ClientError, QueryResult};
pub use frame::{
    read_frame, read_request, read_response, DoneStats, ErrorCode, Format, ProtoError, RawFrame,
    Request, Response, ViewRef, DOC_CHANNEL, MAX_FRAME_LEN,
};
pub use pipeline::{CancelRegistry, PipelineError, RunStats, ViewCatalog, XPathResolution};
pub use qlog::{QlogRecord, QueryLog};
pub use server::{serve, ServeConfig, ServeHandle};
pub use stats::{prometheus_text, ClientStat, QlogStat, StatsSources, STATS_PROTO};
