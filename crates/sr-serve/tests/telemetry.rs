//! Live-telemetry behaviour of the serving front-end: STATS snapshots
//! stay coherent while queries are in flight (STATS is never admission
//! controlled, so it must answer even when every slot is busy), and the
//! structured query log captures slow requests with an attached per-node
//! profile and a loadable Chrome trace.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sr_engine::Server as Engine;
use sr_obs::Json;
use sr_serve::{serve, AdmitConfig, Client, ServeConfig, ViewCatalog, ViewRef, STATS_PROTO};

/// A deliberately small view so test servers stay cheap.
const VIEW_RXL: &str = "from Supplier $s construct <supplier> <name>$s.name</name> </supplier>";

fn view() -> ViewRef {
    ViewRef::Rxl(VIEW_RXL.into())
}

fn tiny_engine() -> Arc<Engine> {
    let db = sr_tpch::generate(sr_tpch::Scale::mb(0.05)).expect("tpch");
    Arc::new(Engine::new(Arc::new(db)))
}

/// A fresh path under the system temp dir, unique per test invocation.
fn scratch_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "sr-telemetry-{}-{tag}-{n}.jsonl",
        std::process::id()
    ))
}

/// Spin until `cond` holds or the deadline passes.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn unum(j: &Json, path: &[&str]) -> f64 {
    let mut cur = j;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing key {key} in {}", path.join(".")));
    }
    cur.as_f64().unwrap_or_else(|| {
        panic!("non-numeric at {}", path.join("."));
    })
}

/// Every snapshot taken while worker threads hammer the server must be
/// internally consistent: schema version, admission numbers within their
/// configured bounds, cause-labeled rejections summing to the total, and
/// cumulative counters monotone from poll to poll.
#[test]
fn concurrent_stats_polls_stay_coherent() {
    let handle = serve(
        tiny_engine(),
        ViewCatalog::new(),
        ServeConfig {
            admit: AdmitConfig {
                slots: 1,
                per_client: 1,
                queue_depth: 4,
            },
            ..ServeConfig::default()
        },
    )
    .expect("bind serve");
    let addr = handle.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("worker connect");
                c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                let mut done = 0u32;
                // At least four queries each, then keep going until the
                // poller has seen enough snapshots.
                while done < 4 || !stop.load(Ordering::Relaxed) {
                    let r = c.fetch_tuples(view(), "unified").expect("worker query");
                    assert!(r.stats.tuples > 0);
                    done += 1;
                }
                done
            })
        })
        .collect();

    let mut poller = Client::connect(addr).expect("poller connect");
    poller
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut last_admitted = 0.0f64;
    let mut last_uptime = 0.0f64;
    let mut saw_in_flight = false;
    for _ in 0..25 {
        let text = poller.stats().expect("stats while loaded");
        let j = Json::parse(&text).expect("stats parses");
        assert_eq!(unum(&j, &["proto"]) as u64, STATS_PROTO);

        // Admission numbers respect the configured limits.
        let slots = unum(&j, &["admission", "slots"]);
        let in_flight = unum(&j, &["admission", "in_flight"]);
        let queue_len = unum(&j, &["admission", "queue_len"]);
        assert!(in_flight <= slots, "in_flight {in_flight} > slots {slots}");
        assert!(queue_len <= unum(&j, &["admission", "queue_depth"]));
        if in_flight > 0.0 {
            saw_in_flight = true;
        }

        // Cause-labeled rejections sum to the total.
        let total = unum(&j, &["admission", "rejected", "total"]);
        let by_cause: f64 = ["queue_full", "quota", "max_conns", "draining"]
            .iter()
            .map(|c| unum(&j, &["admission", "rejected", c]))
            .sum();
        assert_eq!(total, by_cause, "rejected total != sum of causes");

        // Monotone cumulative state.
        let admitted = unum(&j, &["admission", "admitted"]);
        let uptime = unum(&j, &["uptime_s"]);
        assert!(admitted >= last_admitted, "admitted went backwards");
        assert!(uptime >= last_uptime, "uptime went backwards");
        last_admitted = admitted;
        last_uptime = uptime;

        // Connection registry covers the workers and this poller.
        let active = unum(&j, &["connections", "active"]);
        assert!((1.0..=3.0).contains(&active), "active {active}");
        match j.get("clients") {
            Some(Json::Arr(rows)) => assert!(!rows.is_empty()),
            other => panic!("clients not an array: {other:?}"),
        }

        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::Relaxed);
    let total_queries: u32 = workers.into_iter().map(|w| w.join().expect("worker")).sum();
    assert!(total_queries >= 8);
    assert!(
        saw_in_flight,
        "no snapshot observed an in-flight query — load never overlapped the polls"
    );

    // The final quiescent snapshot agrees with what the workers did.
    let j = Json::parse(&poller.stats().expect("final stats")).expect("parse");
    assert!(unum(&j, &["admission", "admitted"]) >= f64::from(total_queries));
    handle.shutdown();
}

/// With `--slow-ms 0` every request is slow: the query log must hold one
/// schema-complete JSONL record per request, slow ones carrying an
/// EXPLAIN ANALYZE profile and a Chrome trace file that actually loads.
#[test]
fn qlog_captures_slow_query_with_profile_and_trace() {
    let qlog_path = scratch_path("qlog");
    let handle = serve(
        tiny_engine(),
        ViewCatalog::new(),
        ServeConfig {
            query_log: Some(qlog_path.clone()),
            slow_ms: Some(0),
            ..ServeConfig::default()
        },
    )
    .expect("bind serve");

    let mut c = Client::connect(handle.local_addr()).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let xml = c.materialize(view(), "unified").expect("xml query");
    assert!(xml.stats.tuples > 0);
    let tup = c.fetch_tuples(view(), "unified").expect("tuple query");
    assert!(tup.stats.tuples > 0);

    // Slow capture runs after the response ships; the STATS qlog section
    // tells us when both records (and their traces) have landed.
    wait_for("both qlog records written", || {
        let j = Json::parse(&c.stats().expect("stats")).expect("parse");
        unum(&j, &["qlog", "written"]) >= 2.0 && unum(&j, &["qlog", "slow"]) >= 2.0
    });
    let j = Json::parse(&c.stats().expect("stats")).expect("parse");
    assert_eq!(unum(&j, &["qlog", "dropped"]), 0.0);
    assert!(matches!(
        j.get("qlog").and_then(|q| q.get("enabled")),
        Some(Json::Bool(true))
    ));
    handle.shutdown();

    let body = std::fs::read_to_string(&qlog_path).expect("read query log");
    let records: Vec<Json> = body
        .lines()
        .map(|l| Json::parse(l).expect("record parses"))
        .collect();
    assert_eq!(records.len(), 2, "one JSONL record per request");

    for (i, r) in records.iter().enumerate() {
        // Schema-complete: every always-present field is there.
        for key in [
            "seq",
            "client",
            "view",
            "format",
            "exec_mode",
            "shards",
            "streams",
            "cache_hit",
            "queue_ms",
            "plan_ms",
            "exec_ms",
            "encode_ms",
            "total_ms",
            "rows",
            "bytes",
            "outcome",
            "slow",
        ] {
            assert!(r.get(key).is_some(), "record {i} missing {key}");
        }
        assert_eq!(unum(r, &["seq"]) as usize, i);
        assert_eq!(r.get("outcome").and_then(Json::as_str), Some("ok"));
        assert!(matches!(r.get("slow"), Some(Json::Bool(true))));
        assert!(unum(r, &["rows"]) > 0.0);
        assert!(unum(r, &["bytes"]) > 0.0);
        assert!(unum(r, &["total_ms"]) >= 0.0);

        // The attached profile analyzes every component SQL.
        match r.get("profile") {
            Some(Json::Arr(entries)) => {
                assert_eq!(entries.len(), unum(r, &["streams"]) as usize);
                for e in entries {
                    assert!(e.get("sql").and_then(Json::as_str).is_some());
                }
            }
            other => panic!("record {i} profile missing or not an array: {other:?}"),
        }

        // The trace file exists, parses, and names the pipeline threads.
        let trace_file = r
            .get("trace_file")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("record {i} has no trace_file"));
        let trace = Json::parse(&std::fs::read_to_string(trace_file).expect("read trace"))
            .expect("trace parses");
        match trace.get("traceEvents") {
            Some(Json::Arr(events)) => assert!(!events.is_empty(), "empty trace"),
            other => panic!("trace {trace_file} has no traceEvents array: {other:?}"),
        }
        let _ = std::fs::remove_file(trace_file);
    }
    let _ = std::fs::remove_file(&qlog_path);
}

/// The query log keeps serving non-slow traffic when `--slow-ms` is not
/// configured: records are written but carry no profile or trace.
#[test]
fn qlog_without_slow_threshold_skips_capture() {
    let qlog_path = scratch_path("fast");
    let handle = serve(
        tiny_engine(),
        ViewCatalog::new(),
        ServeConfig {
            query_log: Some(qlog_path.clone()),
            slow_ms: None,
            ..ServeConfig::default()
        },
    )
    .expect("bind serve");

    let mut c = Client::connect(handle.local_addr()).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    c.fetch_tuples(view(), "unified").expect("query");
    wait_for("qlog record written", || {
        let j = Json::parse(&c.stats().expect("stats")).expect("parse");
        unum(&j, &["qlog", "written"]) >= 1.0
    });
    handle.shutdown();

    let body = std::fs::read_to_string(&qlog_path).expect("read query log");
    let r = Json::parse(body.lines().next().expect("one record")).expect("parse");
    assert!(matches!(r.get("slow"), Some(Json::Bool(false))));
    assert!(r.get("profile").is_none());
    assert!(r.get("trace_file").is_none());
    let _ = std::fs::remove_file(&qlog_path);
}
