//! Cancellation, fault, and shutdown behaviour of the serving front-end:
//! a CANCEL frame or a dropped connection aborts the in-flight producers
//! and frees their slots; graceful shutdown drains in-flight queries while
//! refusing new ones with BUSY; injected faults fire identically through
//! the serve path; a stalled peer trips the connection read timeout
//! instead of pinning a worker thread.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sr_engine::{FaultPlan, Server as Engine};
use sr_serve::{
    serve, AdmitConfig, Client, ClientError, ErrorCode, ServeConfig, ViewCatalog, ViewRef,
};

/// A deliberately small view so test servers stay cheap; plans and stream
/// counts are irrelevant here — only lifecycle behaviour is under test.
const VIEW_RXL: &str = "from Supplier $s construct <supplier> <name>$s.name</name> </supplier>";

fn view() -> ViewRef {
    ViewRef::Rxl(VIEW_RXL.into())
}

/// An engine whose **first** scan is held in an injected delay, with the
/// streaming worker enabled so the producer runs concurrently and can be
/// cancelled mid-flight (the same setup as the engine's own
/// `cancelling_stream_stops_worker_mid_flight` test).
fn slow_first_scan_engine(delay_ms: u64) -> Arc<Engine> {
    let db = sr_tpch::generate(sr_tpch::Scale::mb(0.05)).expect("tpch");
    let plan = FaultPlan::parse(&format!("delay{delay_ms}@scan#1"), 1).expect("fault plan");
    Arc::new(
        Engine::new(Arc::new(db))
            .with_stream_workers(true)
            .with_faults(plan),
    )
}

fn serve_one_slot(engine: Arc<Engine>) -> sr_serve::ServeHandle {
    let cfg = ServeConfig {
        admit: AdmitConfig {
            slots: 1,
            per_client: 1,
            queue_depth: 4,
        },
        ..ServeConfig::default()
    };
    serve(engine, ViewCatalog::new(), cfg).expect("bind serve")
}

fn counter(engine: &Engine, name: &str) -> u64 {
    engine.metrics().snapshot().counter(name)
}

/// Spin until `cond` holds or the deadline passes.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn cancel_frame_aborts_in_flight_query() {
    let engine = slow_first_scan_engine(400);
    let handle = serve_one_slot(Arc::clone(&engine));

    let mut c = Client::connect(handle.local_addr()).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    c.send(&sr_serve::Request::Query {
        format: sr_serve::Format::Xml,
        view: view(),
        plan: "unified".into(),
        xpath: None,
    })
    .expect("send query");
    // Let the worker reach (and sit in) the injected scan delay, then
    // cancel while it is held there.
    std::thread::sleep(Duration::from_millis(120));
    c.cancel().expect("send cancel");

    // The server answers the in-flight query with a typed CANCELLED error.
    loop {
        match c.read().expect("read") {
            Some(sr_serve::Response::Chunk { .. }) => continue,
            Some(sr_serve::Response::Error { code, .. }) => {
                assert_eq!(code, ErrorCode::Cancelled);
                break;
            }
            other => panic!("expected CANCELLED error frame, got {other:?}"),
        }
    }

    // The producer unwound through the engine (releasing its ExecGate
    // permit) and both layers counted the cancellation.
    wait_for("engine-side cancel accounting", || {
        counter(&engine, "server.cancelled") >= 1
    });
    assert_eq!(counter(&engine, "serve.cancelled"), 1);
    wait_for("admission slot release", || {
        handle.admission().in_flight() == 0
    });

    // The same connection is reusable: the next query (the fault only hits
    // the first scan) completes normally.
    let again = c
        .materialize(view(), "unified")
        .expect("query after cancel");
    assert!(again.stats.tuples > 0);

    handle.shutdown();
}

#[test]
fn client_disconnect_aborts_producer_and_frees_slot() {
    let engine = slow_first_scan_engine(400);
    let handle = serve_one_slot(Arc::clone(&engine));

    let mut c = Client::connect(handle.local_addr()).expect("connect");
    c.send(&sr_serve::Request::Query {
        format: sr_serve::Format::Xml,
        view: view(),
        plan: "unified".into(),
        xpath: None,
    })
    .expect("send query");
    std::thread::sleep(Duration::from_millis(120));
    // Sever the connection with no goodbye — a crashed client.
    c.abort();

    // The reader notices the disconnect, fires the cancel registry, the
    // worker unwinds, and the admission slot comes back.
    wait_for("disconnect-triggered cancel", || {
        counter(&engine, "serve.cancelled") >= 1
    });
    wait_for("engine-side cancel accounting", || {
        counter(&engine, "server.cancelled") >= 1
    });
    wait_for("admission slot release", || {
        handle.admission().in_flight() == 0
    });

    // The freed slot is genuinely usable by a new client.
    let mut c2 = Client::connect(handle.local_addr()).expect("reconnect");
    let res = c2
        .materialize(view(), "unified")
        .expect("query after disconnect");
    assert!(res.stats.tuples > 0);

    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_and_rejects_queued() {
    let engine = slow_first_scan_engine(400);
    let handle = serve_one_slot(Arc::clone(&engine));
    let addr = handle.local_addr();

    // Client A occupies the single slot with the delayed query.
    let a = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect A");
        c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        c.materialize(ViewRef::Rxl(VIEW_RXL.into()), "unified")
    });
    std::thread::sleep(Duration::from_millis(100));

    // Client B queues behind A on the one slot.
    let b = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect B");
        c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        c.materialize(ViewRef::Rxl(VIEW_RXL.into()), "unified")
    });
    wait_for("B waiting in the admission queue", || {
        counter(&engine, "serve.requests") >= 2
    });

    // Drain: A (in flight) must complete; B (queued) must get BUSY.
    handle.begin_shutdown();

    let a_result = a.join().expect("join A");
    let b_result = b.join().expect("join B");
    match a_result {
        Ok(res) => assert!(res.stats.tuples > 0, "drained query lost its result"),
        Err(e) => panic!("in-flight query must survive the drain: {e}"),
    }
    match b_result {
        Err(ClientError::Busy(msg)) => {
            assert!(msg.contains("draining"), "unexpected BUSY reason: {msg}")
        }
        other => panic!("queued query must be refused with BUSY, got {other:?}"),
    }
    assert_eq!(counter(&engine, "serve.rejected"), 1);

    handle.shutdown();
}

#[test]
fn injected_faults_fire_identically_through_the_serve_path() {
    let db = sr_tpch::generate(sr_tpch::Scale::mb(0.05)).expect("tpch");
    let engine = Arc::new(
        Engine::new(Arc::new(db))
            .with_stream_workers(true)
            .with_faults(FaultPlan::parse("panic@scan#1", 1).expect("fault plan")),
    );
    let handle = serve_one_slot(Arc::clone(&engine));

    let mut c = Client::connect(handle.local_addr()).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // First request hits the injected panic; isolation turns it into a
    // typed INTERNAL error frame, exactly as the in-process path reports
    // EngineError::Internal.
    match c.materialize(view(), "unified") {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Internal),
        other => panic!("expected INTERNAL error, got {other:?}"),
    }
    assert_eq!(counter(&engine, "server.panics"), 1);

    // The panic consumed the fault and the connection survived: the second
    // request succeeds on the same socket.
    let res = c.materialize(view(), "unified").expect("query after panic");
    assert!(res.stats.tuples > 0);
    assert_eq!(handle.admission().in_flight(), 0, "panic leaked a slot");

    handle.shutdown();
}

#[test]
fn partial_frame_stall_trips_read_timeout() {
    let db = sr_tpch::generate(sr_tpch::Scale::mb(0.05)).expect("tpch");
    let engine = Arc::new(Engine::new(Arc::new(db)));
    let cfg = ServeConfig {
        read_timeout: Duration::from_millis(250),
        ..ServeConfig::default()
    };
    let handle = serve(Arc::clone(&engine), ViewCatalog::new(), cfg).expect("bind serve");

    // Three bytes of a length prefix, then silence: the watchdog must cut
    // the connection off with a typed TIMEOUT frame instead of waiting for
    // the rest of the frame forever.
    let mut c = Client::connect(handle.local_addr()).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c.send_raw(&[0, 0, 0]).expect("send partial prefix");
    match c.read() {
        Ok(Some(sr_serve::Response::Error { code, message })) => {
            assert_eq!(code, ErrorCode::Timeout);
            assert!(message.contains("read timeout"), "message: {message}");
        }
        other => panic!("expected TIMEOUT error frame, got {other:?}"),
    }
    match c.read() {
        Ok(None) | Err(_) => {}
        Ok(Some(r)) => panic!("connection should close after the timeout, got {r:?}"),
    }
    assert_eq!(counter(&engine, "serve.read_timeouts"), 1);

    // No worker thread was pinned: the server still answers immediately.
    let mut c2 = Client::connect(handle.local_addr()).expect("reconnect");
    c2.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c2.ping().expect("server alive after stalled peer");

    handle.shutdown();
}

#[test]
fn shutdown_frame_drains_the_server() {
    let db = sr_tpch::generate(sr_tpch::Scale::mb(0.05)).expect("tpch");
    let engine = Arc::new(Engine::new(Arc::new(db)));
    let handle = serve(engine, ViewCatalog::new(), ServeConfig::default()).expect("bind serve");

    let mut c = Client::connect(handle.local_addr()).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c.shutdown_server().expect("GOODBYE handshake");
    // The drain completes on its own: wait() returns without further help.
    handle.wait();
}
