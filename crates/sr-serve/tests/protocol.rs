//! Frame-codec conformance: property-based round-trips over the whole
//! message space, plus a corpus of malformed byte streams thrown at a live
//! server. The invariant under test is the one the module docs promise —
//! decoding is *total*: every input either parses or yields a typed
//! [`ProtoError`], never a panic and never a hang.

use std::sync::Arc;

use proptest::prelude::*;
use sr_engine::Server as Engine;
use sr_serve::{
    read_request, read_response, serve, Client, DoneStats, ErrorCode, Format, ProtoError, Request,
    Response, ServeConfig, ViewCatalog, ViewRef, MAX_FRAME_LEN,
};

// ---------------------------------------------------------------------------
// Property tests: encode → decode is the identity, truncation is typed.
// ---------------------------------------------------------------------------

fn format_strategy() -> impl Strategy<Value = Format> {
    prop_oneof![Just(Format::Xml), Just(Format::Tuples)]
}

fn view_strategy() -> impl Strategy<Value = ViewRef> {
    prop_oneof![
        "[a-zA-Z0-9_]{0,24}".prop_map(ViewRef::Named),
        "[a-zA-Z0-9 <>/$.={}\n]{0,120}".prop_map(ViewRef::Rxl),
    ]
}

fn request_strategy() -> impl Strategy<Value = Request> {
    let xpath = prop_oneof![
        Just(None),
        "[a-z/*\\[\\]=<>!. \"#0-9-]{1,40}".prop_map(Some),
    ];
    prop_oneof![
        (
            format_strategy(),
            view_strategy(),
            "[a-z0-9:-]{0,20}",
            xpath
        )
            .prop_map(|(format, view, plan, xpath)| Request::Query {
                format,
                view,
                plan,
                xpath,
            }),
        Just(Request::Ping),
        Just(Request::Cancel),
        Just(Request::Shutdown),
    ]
}

fn error_code_strategy() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::Malformed),
        Just(ErrorCode::UnknownView),
        Just(ErrorCode::BadPlan),
        Just(ErrorCode::Engine),
        Just(ErrorCode::Cancelled),
        Just(ErrorCode::Timeout),
        Just(ErrorCode::Internal),
        Just(ErrorCode::BadQuery),
    ]
}

fn stats_strategy() -> impl Strategy<Value = DoneStats> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(tuples, elements, bytes, streams, elapsed_us)| DoneStats {
            tuples,
            elements,
            bytes,
            streams,
            elapsed_us,
        })
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..256))
            .prop_map(|(channel, data)| Response::Chunk { channel, data }),
        stats_strategy().prop_map(Response::Done),
        (error_code_strategy(), "[ -~]{0,80}")
            .prop_map(|(code, message)| Response::Error { code, message }),
        "[ -~]{0,80}".prop_map(|message| Response::Busy { message }),
        Just(Response::Pong),
        Just(Response::Goodbye),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_roundtrips(req in request_strategy()) {
        let bytes = req.encode();
        let back = read_request(&mut &bytes[..])
            .expect("decode")
            .expect("one frame present");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn response_roundtrips(resp in response_strategy()) {
        let bytes = resp.encode();
        let back = read_response(&mut &bytes[..])
            .expect("decode")
            .expect("one frame present");
        prop_assert_eq!(back, resp);
    }

    /// Every strict prefix of a valid frame is a *typed* truncation error —
    /// except the empty prefix, which is a clean EOF at a frame boundary.
    #[test]
    fn request_prefixes_are_typed(req in request_strategy(), frac in 0.0f64..1.0) {
        let bytes = req.encode();
        let cut = ((bytes.len() as f64) * frac) as usize; // < len: strict prefix
        match read_request(&mut &bytes[..cut]) {
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only at the boundary"),
            Err(ProtoError::Truncated { missing }) => {
                prop_assert!(missing > 0);
                prop_assert!(cut > 0);
            }
            other => panic!(
                "prefix of {cut}/{} bytes: expected Truncated, got {other:?}",
                bytes.len()
            ),
        }
    }

    /// Arbitrary garbage never panics the decoder: it parses, truncates, or
    /// fails with a typed error.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = read_request(&mut &bytes[..]);
        let _ = read_response(&mut &bytes[..]);
    }
}

// ---------------------------------------------------------------------------
// Malformed-input corpus against a live server.
// ---------------------------------------------------------------------------

fn spawn_server() -> (sr_serve::ServeHandle, Arc<Engine>) {
    let db = sr_tpch::generate(sr_tpch::Scale::mb(0.05)).expect("tpch");
    let engine = Arc::new(Engine::new(Arc::new(db)));
    let handle = serve(
        Arc::clone(&engine),
        ViewCatalog::new(),
        ServeConfig::default(),
    )
    .expect("bind serve");
    (handle, engine)
}

fn protocol_errors(engine: &Engine) -> u64 {
    engine.metrics().snapshot().counter("serve.protocol_errors")
}

/// One malformed byte stream → the server answers with a typed MALFORMED
/// error frame and closes; it never panics and stays available afterwards.
fn expect_malformed(handle: &sr_serve::ServeHandle, raw: &[u8], what: &str) {
    let mut c = Client::connect(handle.local_addr()).expect("connect");
    c.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("timeout");
    c.send_raw(raw).expect("send");
    match c.read() {
        Ok(Some(Response::Error { code, .. })) => {
            assert_eq!(code, ErrorCode::Malformed, "{what}: wrong error code");
        }
        other => panic!("{what}: expected MALFORMED error frame, got {other:?}"),
    }
    // The server closes the connection after a protocol error.
    match c.read() {
        Ok(None) | Err(_) => {}
        Ok(Some(r)) => panic!("{what}: connection should close, got {r:?}"),
    }
}

#[test]
fn malformed_corpus_yields_typed_errors_and_server_survives() {
    let (handle, engine) = spawn_server();

    // Oversize frame length: rejected before any allocation.
    let mut oversize = ((MAX_FRAME_LEN as u32) + 1).to_be_bytes().to_vec();
    oversize.push(0x01);
    expect_malformed(&handle, &oversize, "oversize length");

    // Zero frame length: a frame must at least carry its opcode.
    expect_malformed(&handle, &[0, 0, 0, 0], "zero length");

    // Garbage opcode.
    expect_malformed(&handle, &[0, 0, 0, 1, 0x7f], "garbage opcode");

    // Known opcode, truncated payload: QUERY with no body.
    expect_malformed(&handle, &[0, 0, 0, 1, 0x01], "empty query payload");

    // Known opcode, trailing junk after a complete payload: PING carries
    // no payload, so any extra byte is an error.
    expect_malformed(&handle, &[0, 0, 0, 2, 0x02, 0xaa], "trailing bytes");

    assert_eq!(
        protocol_errors(&engine),
        5,
        "each malformed stream counts exactly once"
    );

    // Truncated length prefix then disconnect: not a protocol error (the
    // peer just went away mid-frame), but it must not wedge anything.
    let mut c = Client::connect(handle.local_addr()).expect("connect");
    c.send_raw(&[0x00, 0x00]).expect("send partial prefix");
    c.abort();

    // The server is still fully alive.
    let mut c = Client::connect(handle.local_addr()).expect("reconnect");
    c.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("timeout");
    c.ping()
        .expect("server still answers after malformed corpus");
    drop(c);

    handle.shutdown();
}

/// Hostile *query text* (as opposed to hostile frames): inline RXL nested
/// deep enough to blow an unguarded recursive-descent parser's stack, and
/// XPath text that fails to parse or compose. All of it must come back as
/// a typed BAD_QUERY error frame — never a crash — and the connection
/// stays usable afterwards (a bad query is not a protocol violation).
#[test]
fn hostile_query_text_yields_bad_query_not_crash() {
    let (handle, _engine) = spawn_server();
    let mut c = Client::connect(handle.local_addr()).expect("connect");
    c.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .expect("timeout");

    let expect_bad_query = |c: &mut Client, view: ViewRef, xpath: Option<&str>, what: &str| match c
        .query_with_xpath(Format::Xml, view, "unified", xpath)
    {
        Err(sr_serve::ClientError::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::BadQuery, "{what}: wrong error code");
        }
        other => panic!("{what}: expected BAD_QUERY, got {other:?}"),
    };

    // Fuzz-style nesting bomb: 20k unclosed elements of inline RXL. The
    // parser's depth guard must turn this into a typed error long before
    // the recursion can overflow the handler thread's stack.
    let bomb = "<a>".repeat(20_000);
    expect_bad_query(&mut c, ViewRef::Rxl(bomb), None, "element nesting bomb");
    let block_bomb = "from Supplier $s construct ".to_string() + &"<a>{ construct ".repeat(20_000);
    expect_bad_query(&mut c, ViewRef::Rxl(block_bomb), None, "block nesting bomb");

    // Ordinary RXL that just doesn't parse.
    expect_bad_query(
        &mut c,
        ViewRef::Rxl("from construct".into()),
        None,
        "rxl parse",
    );

    let view = "from Supplier $s construct <supplier><name>$s.name</name>\
                { from PartSupp $ps where $s.suppkey = $ps.suppkey \
                  construct <part>$ps.partkey</part> }</supplier>";

    // XPath that doesn't parse (no leading axis), overlong, or that the
    // composer rejects (predicate across a `*` edge).
    expect_bad_query(
        &mut c,
        ViewRef::Rxl(view.into()),
        Some("supplier"),
        "xpath parse",
    );
    let deep = "/a".repeat(1_000);
    expect_bad_query(
        &mut c,
        ViewRef::Rxl(view.into()),
        Some(&deep),
        "xpath too many steps",
    );
    expect_bad_query(
        &mut c,
        ViewRef::Rxl(view.into()),
        Some("/supplier[part = 3]"),
        "xpath compose",
    );

    // Same connection, well-formed query: still served.
    let ok = c
        .query_xpath(ViewRef::Rxl(view.into()), "unified", "/supplier/name")
        .expect("good query after bad ones");
    assert!(ok.document.starts_with(b"<supplier>"));

    handle.shutdown();
}
