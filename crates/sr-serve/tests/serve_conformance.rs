//! Multi-client conformance: N concurrent clients materializing the
//! paper's `query1` / `query2` over the wire must each receive a document
//! byte-identical to the in-process golden corpus (`tests/golden/`), while
//! the server's plan cache and admission slots account correctly.

use std::path::PathBuf;
use std::sync::{Arc, Barrier};

use silkroute::{query1_tree, query2_tree};
use sr_engine::Server as Engine;
use sr_serve::{serve, AdmitConfig, Client, ServeConfig, ViewCatalog, ViewRef};

/// Must match the scale the golden corpus was generated at.
const SCALE_MB: f64 = 0.1;

/// Simultaneous clients — the acceptance criteria require at least 4.
const CLIENTS: usize = 4;

fn golden(name: &str) -> Vec<u8> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("read golden {}: {e}", path.display()))
}

fn spawn_server() -> (sr_serve::ServeHandle, Arc<Engine>) {
    let db = Arc::new(sr_tpch::generate(sr_tpch::Scale::mb(SCALE_MB)).expect("tpch"));
    let engine = Arc::new(Engine::new(Arc::clone(&db)));
    let mut catalog = ViewCatalog::new();
    catalog.insert("query1", query1_tree(&db));
    catalog.insert("query2", query2_tree(&db));
    let cfg = ServeConfig {
        admit: AdmitConfig {
            slots: CLIENTS,
            per_client: 2,
            queue_depth: CLIENTS * 4,
        },
        ..ServeConfig::default()
    };
    let handle = serve(Arc::clone(&engine), catalog, cfg).expect("bind serve");
    (handle, engine)
}

#[test]
fn concurrent_clients_match_goldens_and_account_resources() {
    let (handle, engine) = spawn_server();
    let addr = handle.local_addr();
    let golden1 = golden("query1.xml");
    let golden2 = golden("query2.xml");

    // Warm pass: one client runs both views once, populating the plan
    // cache (first compilation of each unified SQL query is a miss).
    {
        let mut c = Client::connect(addr).expect("connect");
        for (view, want) in [("query1", &golden1), ("query2", &golden2)] {
            let got = c
                .materialize(ViewRef::Named(view.into()), "unified")
                .unwrap_or_else(|e| panic!("warm {view}: {e}"));
            assert_eq!(&got.document, want, "warm {view}: golden mismatch");
        }
    }
    let hits_before = engine
        .metrics()
        .snapshot()
        .counter("server.plan_cache_hits");

    // Concurrent pass: CLIENTS simultaneous connections, each running both
    // views. The barrier makes them hit the server together.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut threads = Vec::new();
    for i in 0..CLIENTS {
        let barrier = Arc::clone(&barrier);
        let golden1 = golden1.clone();
        let golden2 = golden2.clone();
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            barrier.wait();
            for (view, want) in [("query1", &golden1), ("query2", &golden2)] {
                let got = c
                    .materialize(ViewRef::Named(view.to_string()), "unified")
                    .unwrap_or_else(|e| panic!("client {i} {view}: {e}"));
                assert_eq!(
                    &got.document, want,
                    "client {i} {view}: document differs from golden"
                );
                assert!(got.stats.tuples > 0, "client {i} {view}: no tuples");
                assert_eq!(got.stats.streams, 1, "unified plan is one stream");
            }
        }));
    }
    for t in threads {
        t.join().expect("client thread");
    }

    // Plan-cache accounting: the warm pass compiled each view's unified
    // SQL once; all CLIENTS × 2 subsequent executions must be cache hits.
    let hits_after = engine
        .metrics()
        .snapshot()
        .counter("server.plan_cache_hits");
    assert_eq!(
        hits_after - hits_before,
        (CLIENTS * 2) as u64,
        "every post-warm query should hit the plan cache"
    );

    // Admission accounting: every permit released, and the counters agree
    // with what actually ran (1 warm client + CLIENTS concurrent, 2
    // queries each; none rejected).
    assert_eq!(handle.admission().in_flight(), 0, "admission slots leaked");
    let snap = engine.metrics().snapshot();
    assert_eq!(snap.counter("serve.requests"), ((CLIENTS + 1) * 2) as u64);
    assert_eq!(snap.counter("serve.admitted"), ((CLIENTS + 1) * 2) as u64);
    assert_eq!(snap.counter("serve.rejected"), 0);
    assert_eq!(snap.counter("serve.connections"), (CLIENTS + 1) as u64);

    // The gate is healthy: a follow-up request on a fresh connection
    // still executes.
    let mut c = Client::connect(addr).expect("reconnect");
    let again = c
        .materialize(ViewRef::Named("query1".into()), "unified")
        .expect("follow-up query after the concurrent pass");
    assert_eq!(again.document, golden1);

    handle.shutdown();
}

/// XPath over the virtual view, served over the wire: for a spread of
/// representative paths (root, narrow branch, predicate at the root step,
/// predicate below a `*` edge, statically-empty), the document that comes
/// back must be byte-identical to the in-process `query_view` result, and
/// the server must account the pruning in its metrics.
#[test]
fn xpath_over_the_wire_matches_in_process_query_view() {
    let (handle, engine) = spawn_server();
    let addr = handle.local_addr();
    let db = Arc::new(sr_tpch::generate(sr_tpch::Scale::mb(SCALE_MB)).expect("tpch"));
    let local = silkroute::Server::new(Arc::clone(&db));
    let tree = query1_tree(&db);

    let paths = [
        "/supplier",
        "/supplier/name",
        "/supplier/part",
        "//order[orderkey < 300]",
        "/supplier[name = \"Supplier#000000002\"]/part",
        "//customer",
        "/widget", // statically empty: Done with zero chunks, no SQL
    ];
    let mut c = Client::connect(addr).expect("connect");
    for p in paths {
        let (_, want) =
            silkroute::query_view_to_string(&tree, &local, p, silkroute::PlanSpec::unified)
                .unwrap_or_else(|e| panic!("in-process {p}: {e}"));
        let got = c
            .query_xpath(ViewRef::Named("query1".into()), "unified", p)
            .unwrap_or_else(|e| panic!("served {p}: {e}"));
        assert_eq!(
            got.document,
            want.as_bytes(),
            "{p}: served document differs from in-process query_view"
        );
        if p == "/widget" {
            assert_eq!(got.stats.streams, 0, "{p}: empty result runs no SQL");
        }
    }

    let snap = engine.metrics().snapshot();
    assert_eq!(
        snap.counter("query.view_hits"),
        paths.len() as u64,
        "every XPath request counts as a view hit"
    );
    assert!(
        snap.counter("query.pruned_nodes") > 0,
        "selective paths prune view nodes"
    );

    handle.shutdown();
}

/// Tuple mode over the wire: the component stream decodes with the
/// engine's wire codec and carries the same row count the XML path reports.
#[test]
fn tuple_mode_roundtrips_the_wire_encoding() {
    let (handle, _engine) = spawn_server();
    let addr = handle.local_addr();

    let mut c = Client::connect(addr).expect("connect");
    let xml = c
        .materialize(ViewRef::Named("query1".into()), "unified")
        .expect("xml run");
    let tup = c
        .fetch_tuples(ViewRef::Named("query1".into()), "unified")
        .expect("tuple run");

    assert_eq!(tup.document, b"", "tuple mode ships no document bytes");
    assert_eq!(tup.streams.len(), 1, "unified plan is one stream");
    assert_eq!(
        tup.stats.tuples, xml.stats.tuples,
        "both formats consume the same stream"
    );

    // The chunks reassemble into a decodable row stream of exactly the
    // advertised length.
    let mut buf = bytes::Bytes::from(tup.streams[0].clone());
    let mut rows = 0u64;
    while let Some(_row) = sr_engine::wire::decode_row(&mut buf).expect("wire decode") {
        rows += 1;
    }
    assert_eq!(
        rows, tup.stats.tuples,
        "decoded row count matches DONE stats"
    );

    handle.shutdown();
}
